//! Deterministic, scriptable fault injection.
//!
//! A production engine must survive a device that misbehaves: co-processor
//! memory is the scarce resource that forces chunked execution in the first
//! place, and accelerator drivers routinely return transient errors under
//! saturation. A [`FaultPlan`] scripts such failures into a simulated device
//! so the runtime's recovery paths (chunk backoff, device fallback) are
//! testable without hardware — and *deterministically*, so a failing run can
//! be replayed exactly.
//!
//! Faults are counted in [`FaultCounters`], which devices expose through
//! [`crate::device::Device::fault_counters`]; the runtime folds them into
//! its execution statistics so tests and benches can assert that recovery
//! actually happened.

use crate::error::{DeviceError, Result};
use adamant_storage::rng::Rng;

/// Simulated duration of an injected stall, in nanoseconds (~11.6 days):
/// effectively unbounded on any query timeline, so a stalled operation
/// always blows its watchdog budget, while staying far below `f64`
/// precision loss when summed into run totals.
pub const STALL_NS: f64 = 1.0e15;

/// A deterministic script of failures for one device.
///
/// Scripted triggers are based on per-device operation ordinals (allocation
/// count, execute count). Probabilistic triggers ([`FaultPlan::oom_rate`],
/// [`FaultPlan::exec_error_rate`]) draw from a SplitMix64 stream seeded by
/// [`FaultPlan::with_seed`] — never from wall-clock time or OS entropy — so
/// a plan replays identically on every run with the same seed.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// 1-based allocation ordinals that fail with
    /// [`DeviceError::OutOfMemory`]. Each listed ordinal fires exactly once.
    pub oom_on_alloc: Vec<u64>,
    /// The first `n` `execute()` calls fail with a transient driver error.
    pub transient_exec_errors: u64,
    /// Kernels that *always* fail on this device (persistent hardware or
    /// driver defect). Matched against the full kernel name and against the
    /// base name before any `@variant` suffix.
    pub broken_kernels: Vec<String>,
    /// Virtual capacity cap in bytes: allocations that would push pool usage
    /// above the cap fail with [`DeviceError::OutOfMemory`], as if the
    /// device were smaller than its profile advertises.
    pub capacity_cap: Option<u64>,
    /// Seed for the probabilistic triggers below (chaos soaks sweep it).
    /// `None` behaves like seed 0.
    pub seed: Option<u64>,
    /// Probability in `[0, 1]` that any given `execute()` call fails with a
    /// transient driver error (drawn per call from the seeded stream).
    pub exec_error_rate: f64,
    /// Probability in `[0, 1]` that any given allocation fails with
    /// [`DeviceError::OutOfMemory`] (drawn per call from the seeded stream).
    pub oom_rate: f64,
    /// Multiplier applied to every modeled transfer and compute duration —
    /// the straggler knob (a saturated PCIe link, a thermally throttled
    /// part). `1.0` (the default) leaves timing untouched; values below
    /// `1.0` are rejected by the builder.
    pub slowdown_factor: f64,
    /// 1-based `execute()` ordinals whose modeled duration gains
    /// [`STALL_NS`] — an effectively unbounded stall. Each fires once.
    pub stall_on_exec: Vec<u64>,
    /// 1-based transfer ordinals (`place_data` and `retrieve_data` calls
    /// share one counter) whose modeled duration gains [`STALL_NS`].
    pub stall_on_transfer: Vec<u64>,
    /// Probability in `[0, 1]` that any given `place_data`/`retrieve_data`
    /// payload is silently corrupted (one element bit-flipped), drawn from a
    /// seeded stream decoupled from the OOM/exec streams.
    pub corrupt_transfer_rate: f64,
    /// 1-based `place_data` ordinals whose stored payload is corrupted.
    pub corrupt_on_place: Vec<u64>,
    /// 1-based `retrieve_data` ordinals whose returned payload is corrupted
    /// (the stored copy stays intact — an in-flight DMA flip).
    pub corrupt_on_retrieve: Vec<u64>,
    /// Simulated-clock instant (device-cumulative nanoseconds) at which the
    /// device dies *permanently*: the first operation observed at or after
    /// this instant — and every operation thereafter — fails with
    /// [`DeviceError::Gone`]. Terminal, unlike every other trigger.
    pub die_at_ns: Option<f64>,
    /// 1-based `execute()` ordinal at which the device dies permanently
    /// (the listed execution itself fails with [`DeviceError::Gone`]).
    pub die_on_exec_n: Option<u64>,
    /// Probability in `[0, 1]` that any given `execute()` call kills the
    /// device permanently, drawn from a seeded stream decoupled from every
    /// other trigger stream.
    pub death_rate: f64,
    /// 1-based checkpoint-capture ordinals (as observed by this device) at
    /// which the snapshot being captured is damaged in flight, so its
    /// stored checksum no longer matches its content. The executor's
    /// resume-time validation must then reject the snapshot and degrade to
    /// a full restart.
    pub corrupt_checkpoint: Vec<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            oom_on_alloc: Vec::new(),
            transient_exec_errors: 0,
            broken_kernels: Vec::new(),
            capacity_cap: None,
            seed: None,
            exec_error_rate: 0.0,
            oom_rate: 0.0,
            // A neutral multiplier, not zero: the derived default would
            // freeze simulated time entirely.
            slowdown_factor: 1.0,
            stall_on_exec: Vec::new(),
            stall_on_transfer: Vec::new(),
            corrupt_transfer_rate: 0.0,
            corrupt_on_place: Vec::new(),
            corrupt_on_retrieve: Vec::new(),
            die_at_ns: None,
            die_on_exec_n: None,
            death_rate: 0.0,
            corrupt_checkpoint: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Fails the `n`-th allocation (1-based) with an out-of-memory error.
    pub fn oom_on_allocation(mut self, n: u64) -> Self {
        self.oom_on_alloc.push(n);
        self
    }

    /// Fails the first `n` kernel executions with a transient driver error.
    pub fn transient_exec_errors(mut self, n: u64) -> Self {
        self.transient_exec_errors = n;
        self
    }

    /// Marks `kernel` as persistently broken on this device.
    pub fn broken_kernel(mut self, kernel: impl Into<String>) -> Self {
        self.broken_kernels.push(kernel.into());
        self
    }

    /// Caps usable device memory at `bytes`.
    pub fn capacity_cap(mut self, bytes: u64) -> Self {
        self.capacity_cap = Some(bytes);
        self
    }

    /// Seeds the probabilistic triggers. The same seed (with the same rates
    /// and the same operation sequence) reproduces the exact same failures.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Makes each `execute()` call fail with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn exec_error_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rate must be in [0, 1]");
        self.exec_error_rate = p;
        self
    }

    /// Makes each allocation fail with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn oom_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rate must be in [0, 1]");
        self.oom_rate = p;
        self
    }

    /// Slows every modeled transfer and compute duration by `factor`
    /// (straggler simulation: `8.0` makes the device 8× slower).
    ///
    /// # Panics
    /// Panics if `factor < 1.0` (a speed-up is not a fault).
    pub fn slowdown(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "slowdown factor must be >= 1.0");
        self.slowdown_factor = factor;
        self
    }

    /// Stalls the `n`-th kernel execution (1-based) for [`STALL_NS`].
    pub fn stall_on_exec(mut self, n: u64) -> Self {
        self.stall_on_exec.push(n);
        self
    }

    /// Stalls the `n`-th transfer (1-based; `place_data` and
    /// `retrieve_data` share the counter) for [`STALL_NS`].
    pub fn stall_on_transfer(mut self, n: u64) -> Self {
        self.stall_on_transfer.push(n);
        self
    }

    /// Makes each transfer silently corrupt its payload with probability
    /// `p` (drawn per call from a seeded stream decoupled from the
    /// OOM/exec streams, so adding corruption never perturbs their
    /// sequences).
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn corrupt_transfer_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rate must be in [0, 1]");
        self.corrupt_transfer_rate = p;
        self
    }

    /// Corrupts the stored payload of the `n`-th `place_data` (1-based).
    pub fn corrupt_on_place(mut self, n: u64) -> Self {
        self.corrupt_on_place.push(n);
        self
    }

    /// Corrupts the returned payload of the `n`-th `retrieve_data`
    /// (1-based); the stored copy stays intact.
    pub fn corrupt_on_retrieve(mut self, n: u64) -> Self {
        self.corrupt_on_retrieve.push(n);
        self
    }

    /// Kills the device permanently once its simulated clock reaches `ns`
    /// (the first operation at or past that instant fails with
    /// [`DeviceError::Gone`], and so does everything after it).
    ///
    /// # Panics
    /// Panics if `ns` is negative or not finite.
    pub fn die_at_ns(mut self, ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "death instant must be >= 0");
        self.die_at_ns = Some(ns);
        self
    }

    /// Kills the device permanently on its `n`-th `execute()` call
    /// (1-based); that call and every later operation fail with
    /// [`DeviceError::Gone`].
    pub fn die_on_exec(mut self, n: u64) -> Self {
        self.die_on_exec_n = Some(n);
        self
    }

    /// Makes each `execute()` call kill the device permanently with
    /// probability `p` (drawn per call from a seeded stream decoupled from
    /// the OOM/exec/corruption streams, so enabling death never perturbs
    /// their sequences).
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn death_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rate must be in [0, 1]");
        self.death_rate = p;
        self
    }

    /// Damages the `n`-th checkpoint capture this device observes (1-based).
    pub fn corrupt_checkpoint(mut self, n: u64) -> Self {
        self.corrupt_checkpoint.push(n);
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.oom_on_alloc.is_empty()
            && self.transient_exec_errors == 0
            && self.broken_kernels.is_empty()
            && self.capacity_cap.is_none()
            && self.exec_error_rate == 0.0
            && self.oom_rate == 0.0
            && self.slowdown_factor == 1.0
            && self.stall_on_exec.is_empty()
            && self.stall_on_transfer.is_empty()
            && self.corrupt_transfer_rate == 0.0
            && self.corrupt_on_place.is_empty()
            && self.corrupt_on_retrieve.is_empty()
            && self.die_at_ns.is_none()
            && self.die_on_exec_n.is_none()
            && self.death_rate == 0.0
            && self.corrupt_checkpoint.is_empty()
    }
}

/// Counts of injected faults, per device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Out-of-memory errors injected (ordinal triggers + capacity cap).
    pub oom_injected: u64,
    /// Transient execute errors injected.
    pub transient_exec_injected: u64,
    /// Executions rejected because the kernel is scripted as broken.
    pub broken_kernel_hits: u64,
    /// Operations stalled for [`STALL_NS`] (transfer + execute ordinals).
    pub stalls_injected: u64,
    /// Transfer payloads silently corrupted (scripted + probabilistic).
    pub corruptions_injected: u64,
    /// Permanent device deaths injected (at most 1 per install — death is
    /// terminal).
    pub deaths_injected: u64,
    /// Checkpoint snapshots damaged in flight (scripted capture ordinals).
    pub checkpoint_corruptions_injected: u64,
}

impl FaultCounters {
    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.oom_injected
            + self.transient_exec_injected
            + self.broken_kernel_hits
            + self.stalls_injected
            + self.corruptions_injected
            + self.deaths_injected
            + self.checkpoint_corruptions_injected
    }
}

/// What the fault plan decided for one transfer (`place_data` or
/// `retrieve_data`): how much injected stall time to charge on top of the
/// modeled duration, and whether (and where) to flip a bit in the payload.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TransferFault {
    /// Extra simulated nanoseconds to charge ([`STALL_NS`] when stalled).
    pub stall_ns: f64,
    /// Whether the payload must be corrupted.
    pub corrupt: bool,
    /// Deterministic element index to flip when corrupting (callers take it
    /// modulo the payload length).
    pub corrupt_at: u64,
}

/// Live fault-injection state: the plan plus per-device ordinals and the
/// seeded streams behind the probabilistic triggers.
#[derive(Clone, Debug, Default)]
pub struct FaultState {
    plan: FaultPlan,
    allocs_seen: u64,
    execs_seen: u64,
    transfers_seen: u64,
    places_seen: u64,
    retrieves_seen: u64,
    checkpoints_seen: u64,
    counters: FaultCounters,
    /// Separate streams for allocation, execution and corruption draws, so
    /// the trigger kinds do not perturb each other's sequences.
    alloc_rng: Option<Rng>,
    exec_rng: Option<Rng>,
    corrupt_rng: Option<Rng>,
    death_rng: Option<Rng>,
}

impl FaultState {
    /// Installs a new plan, resetting ordinals, counters and the seeded
    /// streams (re-installing the same plan replays the same failures).
    pub fn install(&mut self, plan: FaultPlan) {
        let seed = plan.seed.unwrap_or(0);
        let (alloc_rng, exec_rng) = if plan.oom_rate > 0.0 || plan.exec_error_rate > 0.0 {
            (
                Some(Rng::new(seed)),
                Some(Rng::new(seed ^ 0x9E37_79B9_7F4A_7C15)),
            )
        } else {
            (None, None)
        };
        // Its own stream and xor constant: enabling corruption must never
        // shift the alloc/exec draw sequences of an existing plan.
        let corrupt_rng = if plan.corrupt_transfer_rate > 0.0 {
            Some(Rng::new(seed ^ 0xC2B2_AE3D_27D4_EB4F))
        } else {
            None
        };
        // Death draws live on their own stream too: enabling a death rate
        // must never shift the alloc/exec/corruption sequences of an
        // existing plan (chaos soaks rely on that stability).
        let death_rng = if plan.death_rate > 0.0 {
            Some(Rng::new(seed ^ 0x94D0_49BB_1331_11EB))
        } else {
            None
        };
        *self = FaultState {
            plan,
            alloc_rng,
            exec_rng,
            corrupt_rng,
            death_rng,
            ..FaultState::default()
        };
    }

    /// Zeroes the injected-fault counters without touching the plan,
    /// ordinals, or seeded streams (back-to-back soak iterations start from
    /// a clean slate).
    pub fn reset_counters(&mut self) {
        self.counters = FaultCounters::default();
    }

    /// Whether the plan's wall-clock death trigger has fired: true once the
    /// device's cumulative simulated clock reaches
    /// [`FaultPlan::die_at_ns`]. Does not count the death — callers invoke
    /// [`FaultState::note_death`] exactly once when they act on it.
    pub fn death_due(&self, clock_ns: f64) -> bool {
        matches!(self.plan.die_at_ns, Some(at) if clock_ns >= at)
    }

    /// Whether the *next* `execute()` call kills the device: true when its
    /// 1-based ordinal matches [`FaultPlan::die_on_exec_n`] or the seeded
    /// death stream draws a hit. Call before [`FaultState::on_execute`]
    /// (which advances the ordinal); callers then invoke
    /// [`FaultState::note_death`] exactly once when they act on it.
    pub fn exec_death_due(&mut self) -> bool {
        let next = self.execs_seen + 1;
        if self.plan.die_on_exec_n == Some(next) {
            return true;
        }
        if self.plan.death_rate > 0.0 {
            if let Some(rng) = &mut self.death_rng {
                return rng.gen_bool(self.plan.death_rate);
            }
        }
        false
    }

    /// Records the (single, terminal) injected death.
    pub fn note_death(&mut self) {
        self.counters.deaths_injected += 1;
    }

    /// Called once per checkpoint capture this device observes. Returns
    /// whether the plan scripts this capture's snapshot to be damaged
    /// (1-based ordinal listed in [`FaultPlan::corrupt_checkpoint`]).
    pub fn on_checkpoint_capture(&mut self) -> bool {
        self.checkpoints_seen += 1;
        if self
            .plan
            .corrupt_checkpoint
            .contains(&self.checkpoints_seen)
        {
            self.counters.checkpoint_corruptions_injected += 1;
            return true;
        }
        false
    }

    /// Injected-fault counters so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Called before each allocation of `requested` bytes while the pool
    /// holds `used` of `capacity` bytes. Returns the scripted error when the
    /// plan says this allocation fails.
    pub fn on_alloc(&mut self, requested: u64, used: u64, capacity: u64) -> Result<()> {
        self.allocs_seen += 1;
        if self.plan.oom_on_alloc.contains(&self.allocs_seen) {
            self.counters.oom_injected += 1;
            return Err(DeviceError::OutOfMemory {
                requested,
                available: capacity.saturating_sub(used),
                capacity,
            });
        }
        if self.plan.oom_rate > 0.0 {
            if let Some(rng) = &mut self.alloc_rng {
                if rng.gen_bool(self.plan.oom_rate) {
                    self.counters.oom_injected += 1;
                    return Err(DeviceError::OutOfMemory {
                        requested,
                        available: capacity.saturating_sub(used),
                        capacity,
                    });
                }
            }
        }
        if let Some(cap) = self.plan.capacity_cap {
            if used + requested > cap {
                self.counters.oom_injected += 1;
                return Err(DeviceError::OutOfMemory {
                    requested,
                    available: cap.saturating_sub(used),
                    capacity: cap,
                });
            }
        }
        Ok(())
    }

    /// Called before each kernel execution. Returns the scripted error when
    /// the plan says this execution fails.
    pub fn on_execute(&mut self, kernel: &str) -> Result<()> {
        self.execs_seen += 1;
        if self.execs_seen <= self.plan.transient_exec_errors {
            self.counters.transient_exec_injected += 1;
            return Err(DeviceError::Driver(format!(
                "injected transient fault on `{kernel}` (execute #{})",
                self.execs_seen
            )));
        }
        if self.plan.exec_error_rate > 0.0 {
            if let Some(rng) = &mut self.exec_rng {
                if rng.gen_bool(self.plan.exec_error_rate) {
                    self.counters.transient_exec_injected += 1;
                    return Err(DeviceError::Driver(format!(
                        "injected probabilistic fault on `{kernel}` (execute #{})",
                        self.execs_seen
                    )));
                }
            }
        }
        let base = kernel.split('@').next().unwrap_or(kernel);
        if self
            .plan
            .broken_kernels
            .iter()
            .any(|b| b == kernel || b == base)
        {
            self.counters.broken_kernel_hits += 1;
            return Err(DeviceError::Driver(format!(
                "injected persistent fault in kernel `{kernel}`"
            )));
        }
        Ok(())
    }

    /// The plan's latency multiplier for modeled transfer/compute durations.
    pub fn time_multiplier(&self) -> f64 {
        self.plan.slowdown_factor
    }

    /// Extra stall time for the `execute()` call that
    /// [`FaultState::on_execute`] just admitted (matched against
    /// [`FaultPlan::stall_on_exec`] on the same ordinal). Call exactly once
    /// per successful execute.
    pub fn take_exec_stall(&mut self) -> f64 {
        if self.plan.stall_on_exec.contains(&self.execs_seen) {
            self.counters.stalls_injected += 1;
            STALL_NS
        } else {
            0.0
        }
    }

    /// Called once per `place_data`: decides stall and payload corruption
    /// for this upload.
    pub fn on_place(&mut self) -> TransferFault {
        self.transfers_seen += 1;
        self.places_seen += 1;
        let scripted = self.plan.corrupt_on_place.contains(&self.places_seen);
        self.transfer_fault(scripted, self.places_seen)
    }

    /// Called once per `retrieve_data`: decides stall and payload
    /// corruption for this download.
    pub fn on_retrieve(&mut self) -> TransferFault {
        self.transfers_seen += 1;
        self.retrieves_seen += 1;
        let scripted = self.plan.corrupt_on_retrieve.contains(&self.retrieves_seen);
        self.transfer_fault(scripted, self.retrieves_seen)
    }

    fn transfer_fault(&mut self, scripted_corrupt: bool, ordinal: u64) -> TransferFault {
        let mut fault = TransferFault {
            corrupt_at: ordinal,
            ..TransferFault::default()
        };
        if self.plan.stall_on_transfer.contains(&self.transfers_seen) {
            self.counters.stalls_injected += 1;
            fault.stall_ns = STALL_NS;
        }
        let mut corrupt = scripted_corrupt;
        if !corrupt && self.plan.corrupt_transfer_rate > 0.0 {
            if let Some(rng) = &mut self.corrupt_rng {
                corrupt = rng.gen_bool(self.plan.corrupt_transfer_rate);
            }
        }
        if corrupt {
            self.counters.corruptions_injected += 1;
            fault.corrupt = true;
        }
        fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_allocation_fires_once() {
        let mut st = FaultState::default();
        st.install(FaultPlan::none().oom_on_allocation(2));
        assert!(st.on_alloc(8, 0, 1024).is_ok());
        assert!(matches!(
            st.on_alloc(8, 8, 1024),
            Err(DeviceError::OutOfMemory { .. })
        ));
        assert!(st.on_alloc(8, 8, 1024).is_ok());
        assert_eq!(st.counters().oom_injected, 1);
    }

    #[test]
    fn capacity_cap_enforced() {
        let mut st = FaultState::default();
        st.install(FaultPlan::none().capacity_cap(100));
        assert!(st.on_alloc(60, 0, 1 << 20).is_ok());
        let err = st.on_alloc(60, 60, 1 << 20).unwrap_err();
        match err {
            DeviceError::OutOfMemory {
                available,
                capacity,
                ..
            } => {
                assert_eq!(capacity, 100);
                assert_eq!(available, 40);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn transient_then_recovers() {
        let mut st = FaultState::default();
        st.install(FaultPlan::none().transient_exec_errors(2));
        assert!(st.on_execute("map").is_err());
        assert!(st.on_execute("map").is_err());
        assert!(st.on_execute("map").is_ok());
        assert_eq!(st.counters().transient_exec_injected, 2);
    }

    #[test]
    fn broken_kernel_matches_variant() {
        let mut st = FaultState::default();
        st.install(FaultPlan::none().broken_kernel("filter_bitmap"));
        assert!(st.on_execute("filter_bitmap").is_err());
        assert!(st.on_execute("filter_bitmap@branchless").is_err());
        assert!(st.on_execute("map").is_ok());
        assert_eq!(st.counters().broken_kernel_hits, 2);
    }

    #[test]
    fn probabilistic_plan_is_deterministic_per_seed() {
        let plan = FaultPlan::none()
            .with_seed(42)
            .exec_error_rate(0.3)
            .oom_rate(0.2);
        let run = |plan: FaultPlan| -> (Vec<bool>, Vec<bool>) {
            let mut st = FaultState::default();
            st.install(plan);
            let allocs: Vec<bool> = (0..200)
                .map(|_| st.on_alloc(8, 0, 1 << 20).is_err())
                .collect();
            let execs: Vec<bool> = (0..200).map(|_| st.on_execute("map").is_err()).collect();
            (allocs, execs)
        };
        let (a1, e1) = run(plan.clone());
        let (a2, e2) = run(plan);
        assert_eq!(a1, a2, "same seed replays the same alloc failures");
        assert_eq!(e1, e2, "same seed replays the same exec failures");
        // The rates actually fire, but not on every call.
        let fired = a1.iter().filter(|&&f| f).count();
        assert!(fired > 0 && fired < 200, "alloc fired {fired}/200");
        let fired = e1.iter().filter(|&&f| f).count();
        assert!(fired > 0 && fired < 200, "exec fired {fired}/200");
    }

    #[test]
    fn distinct_seeds_differ() {
        let mk = |seed: u64| {
            let mut st = FaultState::default();
            st.install(FaultPlan::none().with_seed(seed).exec_error_rate(0.5));
            (0..64)
                .map(|_| st.on_execute("k").is_err())
                .collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn rate_plans_count_as_non_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::none().oom_rate(0.1).is_empty());
        assert!(!FaultPlan::none().exec_error_rate(0.1).is_empty());
        // A bare seed injects nothing.
        assert!(FaultPlan::none().with_seed(7).is_empty());
    }

    #[test]
    #[should_panic(expected = "rate must be in [0, 1]")]
    fn out_of_range_rate_rejected() {
        let _ = FaultPlan::none().exec_error_rate(1.5);
    }

    #[test]
    fn slowdown_and_stalls() {
        let mut st = FaultState::default();
        st.install(
            FaultPlan::none()
                .slowdown(8.0)
                .stall_on_exec(2)
                .stall_on_transfer(1),
        );
        assert_eq!(st.time_multiplier(), 8.0);
        // Exec stall fires on the second execute only.
        assert!(st.on_execute("k").is_ok());
        assert_eq!(st.take_exec_stall(), 0.0);
        assert!(st.on_execute("k").is_ok());
        assert_eq!(st.take_exec_stall(), STALL_NS);
        // Transfer stall fires on the first transfer (a place here).
        assert_eq!(st.on_place().stall_ns, STALL_NS);
        assert_eq!(st.on_retrieve().stall_ns, 0.0);
        assert_eq!(st.counters().stalls_injected, 2);
    }

    #[test]
    fn transfer_ordinal_is_shared_across_directions() {
        let mut st = FaultState::default();
        st.install(FaultPlan::none().stall_on_transfer(2));
        assert_eq!(st.on_place().stall_ns, 0.0);
        // The retrieve is transfer #2.
        assert_eq!(st.on_retrieve().stall_ns, STALL_NS);
    }

    #[test]
    fn scripted_corruption_fires_per_direction() {
        let mut st = FaultState::default();
        st.install(FaultPlan::none().corrupt_on_place(2).corrupt_on_retrieve(1));
        assert!(!st.on_place().corrupt);
        assert!(st.on_retrieve().corrupt);
        let f = st.on_place();
        assert!(f.corrupt);
        assert_eq!(f.corrupt_at, 2, "flip index follows the ordinal");
        assert_eq!(st.counters().corruptions_injected, 2);
    }

    #[test]
    fn probabilistic_corruption_is_deterministic_and_decoupled() {
        let run = |plan: FaultPlan| -> Vec<bool> {
            let mut st = FaultState::default();
            st.install(plan);
            (0..200).map(|_| st.on_place().corrupt).collect()
        };
        let plan = FaultPlan::none().with_seed(42).corrupt_transfer_rate(0.2);
        let a = run(plan.clone());
        assert_eq!(a, run(plan), "same seed replays the same corruptions");
        let fired = a.iter().filter(|&&c| c).count();
        assert!(fired > 0 && fired < 200, "corruption fired {fired}/200");

        // Adding corruption must not perturb the exec draw sequence.
        let exec_seq = |plan: FaultPlan| -> Vec<bool> {
            let mut st = FaultState::default();
            st.install(plan);
            (0..100)
                .map(|_| {
                    let _ = st.on_place();
                    st.on_execute("k").is_err()
                })
                .collect()
        };
        let base = FaultPlan::none().with_seed(7).exec_error_rate(0.3);
        assert_eq!(
            exec_seq(base.clone()),
            exec_seq(base.corrupt_transfer_rate(0.5)),
            "corruption stream must be decoupled from the exec stream"
        );
    }

    #[test]
    fn latency_and_corruption_plans_count_as_non_empty() {
        assert!(!FaultPlan::none().slowdown(2.0).is_empty());
        assert!(!FaultPlan::none().stall_on_exec(1).is_empty());
        assert!(!FaultPlan::none().stall_on_transfer(1).is_empty());
        assert!(!FaultPlan::none().corrupt_transfer_rate(0.1).is_empty());
        assert!(!FaultPlan::none().corrupt_on_place(1).is_empty());
        assert!(!FaultPlan::none().corrupt_on_retrieve(1).is_empty());
        assert_eq!(FaultPlan::default().slowdown_factor, 1.0);
    }

    #[test]
    #[should_panic(expected = "slowdown factor must be >= 1.0")]
    fn speedup_rejected() {
        let _ = FaultPlan::none().slowdown(0.5);
    }

    #[test]
    #[should_panic(expected = "rate must be in [0, 1]")]
    fn out_of_range_corruption_rate_rejected() {
        let _ = FaultPlan::none().corrupt_transfer_rate(-0.1);
    }

    #[test]
    fn death_triggers_count_as_non_empty() {
        assert!(!FaultPlan::none().die_at_ns(5.0e6).is_empty());
        assert!(!FaultPlan::none().die_on_exec(3).is_empty());
        assert!(!FaultPlan::none().death_rate(0.01).is_empty());
    }

    #[test]
    #[should_panic(expected = "rate must be in [0, 1]")]
    fn out_of_range_death_rate_rejected() {
        let _ = FaultPlan::none().death_rate(1.1);
    }

    #[test]
    #[should_panic(expected = "death instant must be >= 0")]
    fn negative_death_instant_rejected() {
        let _ = FaultPlan::none().die_at_ns(-1.0);
    }

    #[test]
    fn clock_death_fires_at_the_scripted_instant() {
        let mut st = FaultState::default();
        st.install(FaultPlan::none().die_at_ns(1000.0));
        assert!(!st.death_due(999.9));
        assert!(st.death_due(1000.0));
        assert!(st.death_due(5000.0));
        st.note_death();
        assert_eq!(st.counters().deaths_injected, 1);
    }

    #[test]
    fn exec_death_fires_on_the_scripted_ordinal() {
        let mut st = FaultState::default();
        st.install(FaultPlan::none().die_on_exec(2));
        // Execute #1 survives, #2 dies.
        assert!(!st.exec_death_due());
        assert!(st.on_execute("k").is_ok());
        assert!(st.exec_death_due());
    }

    #[test]
    fn probabilistic_death_is_deterministic_and_decoupled() {
        let run = |plan: FaultPlan| -> Vec<bool> {
            let mut st = FaultState::default();
            st.install(plan);
            (0..200)
                .map(|_| {
                    let due = st.exec_death_due();
                    let _ = st.on_execute("k");
                    due
                })
                .collect()
        };
        let plan = FaultPlan::none().with_seed(42).death_rate(0.05);
        let a = run(plan.clone());
        assert_eq!(a, run(plan), "same seed replays the same deaths");
        assert!(a.iter().any(|&d| d), "the rate never fired");

        // Enabling death must not perturb the exec draw sequence.
        let exec_seq = |plan: FaultPlan| -> Vec<bool> {
            let mut st = FaultState::default();
            st.install(plan);
            (0..100)
                .map(|_| {
                    let _ = st.exec_death_due();
                    st.on_execute("k").is_err()
                })
                .collect()
        };
        let base = FaultPlan::none().with_seed(7).exec_error_rate(0.3);
        assert_eq!(
            exec_seq(base.clone()),
            exec_seq(base.death_rate(0.5)),
            "death stream must be decoupled from the exec stream"
        );
    }

    #[test]
    fn reset_counters_keeps_plan_and_ordinals() {
        let mut st = FaultState::default();
        st.install(
            FaultPlan::none()
                .oom_on_allocation(1)
                .transient_exec_errors(1),
        );
        assert!(st.on_alloc(8, 0, 64).is_err());
        assert!(st.on_execute("k").is_err());
        assert_eq!(st.counters().total(), 2);
        st.reset_counters();
        assert_eq!(st.counters().total(), 0, "counters zeroed");
        // Ordinals were not rewound: the one-shot triggers stay consumed.
        assert!(st.on_alloc(8, 0, 64).is_ok());
        assert!(st.on_execute("k").is_ok());
    }

    #[test]
    fn install_resets_ordinals() {
        let mut st = FaultState::default();
        st.install(FaultPlan::none().oom_on_allocation(1));
        assert!(st.on_alloc(8, 0, 64).is_err());
        st.install(FaultPlan::none().oom_on_allocation(1));
        assert!(st.on_alloc(8, 0, 64).is_err());
        assert_eq!(st.counters().oom_injected, 1, "counters reset on install");
    }
}
