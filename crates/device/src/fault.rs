//! Deterministic, scriptable fault injection.
//!
//! A production engine must survive a device that misbehaves: co-processor
//! memory is the scarce resource that forces chunked execution in the first
//! place, and accelerator drivers routinely return transient errors under
//! saturation. A [`FaultPlan`] scripts such failures into a simulated device
//! so the runtime's recovery paths (chunk backoff, device fallback) are
//! testable without hardware — and *deterministically*, so a failing run can
//! be replayed exactly.
//!
//! Faults are counted in [`FaultCounters`], which devices expose through
//! [`crate::device::Device::fault_counters`]; the runtime folds them into
//! its execution statistics so tests and benches can assert that recovery
//! actually happened.

use crate::error::{DeviceError, Result};

/// A deterministic script of failures for one device.
///
/// All triggers are based on per-device operation ordinals (allocation
/// count, execute count), never on wall-clock time or randomness, so a plan
/// replays identically on every run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// 1-based allocation ordinals that fail with
    /// [`DeviceError::OutOfMemory`]. Each listed ordinal fires exactly once.
    pub oom_on_alloc: Vec<u64>,
    /// The first `n` `execute()` calls fail with a transient driver error.
    pub transient_exec_errors: u64,
    /// Kernels that *always* fail on this device (persistent hardware or
    /// driver defect). Matched against the full kernel name and against the
    /// base name before any `@variant` suffix.
    pub broken_kernels: Vec<String>,
    /// Virtual capacity cap in bytes: allocations that would push pool usage
    /// above the cap fail with [`DeviceError::OutOfMemory`], as if the
    /// device were smaller than its profile advertises.
    pub capacity_cap: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Fails the `n`-th allocation (1-based) with an out-of-memory error.
    pub fn oom_on_allocation(mut self, n: u64) -> Self {
        self.oom_on_alloc.push(n);
        self
    }

    /// Fails the first `n` kernel executions with a transient driver error.
    pub fn transient_exec_errors(mut self, n: u64) -> Self {
        self.transient_exec_errors = n;
        self
    }

    /// Marks `kernel` as persistently broken on this device.
    pub fn broken_kernel(mut self, kernel: impl Into<String>) -> Self {
        self.broken_kernels.push(kernel.into());
        self
    }

    /// Caps usable device memory at `bytes`.
    pub fn capacity_cap(mut self, bytes: u64) -> Self {
        self.capacity_cap = Some(bytes);
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.oom_on_alloc.is_empty()
            && self.transient_exec_errors == 0
            && self.broken_kernels.is_empty()
            && self.capacity_cap.is_none()
    }
}

/// Counts of injected faults, per device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Out-of-memory errors injected (ordinal triggers + capacity cap).
    pub oom_injected: u64,
    /// Transient execute errors injected.
    pub transient_exec_injected: u64,
    /// Executions rejected because the kernel is scripted as broken.
    pub broken_kernel_hits: u64,
}

impl FaultCounters {
    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.oom_injected + self.transient_exec_injected + self.broken_kernel_hits
    }
}

/// Live fault-injection state: the plan plus per-device ordinals.
#[derive(Clone, Debug, Default)]
pub struct FaultState {
    plan: FaultPlan,
    allocs_seen: u64,
    execs_seen: u64,
    counters: FaultCounters,
}

impl FaultState {
    /// Installs a new plan, resetting ordinals and counters.
    pub fn install(&mut self, plan: FaultPlan) {
        *self = FaultState {
            plan,
            ..FaultState::default()
        };
    }

    /// Injected-fault counters so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Called before each allocation of `requested` bytes while the pool
    /// holds `used` of `capacity` bytes. Returns the scripted error when the
    /// plan says this allocation fails.
    pub fn on_alloc(&mut self, requested: u64, used: u64, capacity: u64) -> Result<()> {
        self.allocs_seen += 1;
        if self.plan.oom_on_alloc.contains(&self.allocs_seen) {
            self.counters.oom_injected += 1;
            return Err(DeviceError::OutOfMemory {
                requested,
                available: capacity.saturating_sub(used),
                capacity,
            });
        }
        if let Some(cap) = self.plan.capacity_cap {
            if used + requested > cap {
                self.counters.oom_injected += 1;
                return Err(DeviceError::OutOfMemory {
                    requested,
                    available: cap.saturating_sub(used),
                    capacity: cap,
                });
            }
        }
        Ok(())
    }

    /// Called before each kernel execution. Returns the scripted error when
    /// the plan says this execution fails.
    pub fn on_execute(&mut self, kernel: &str) -> Result<()> {
        self.execs_seen += 1;
        if self.execs_seen <= self.plan.transient_exec_errors {
            self.counters.transient_exec_injected += 1;
            return Err(DeviceError::Driver(format!(
                "injected transient fault on `{kernel}` (execute #{})",
                self.execs_seen
            )));
        }
        let base = kernel.split('@').next().unwrap_or(kernel);
        if self
            .plan
            .broken_kernels
            .iter()
            .any(|b| b == kernel || b == base)
        {
            self.counters.broken_kernel_hits += 1;
            return Err(DeviceError::Driver(format!(
                "injected persistent fault in kernel `{kernel}`"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_allocation_fires_once() {
        let mut st = FaultState::default();
        st.install(FaultPlan::none().oom_on_allocation(2));
        assert!(st.on_alloc(8, 0, 1024).is_ok());
        assert!(matches!(
            st.on_alloc(8, 8, 1024),
            Err(DeviceError::OutOfMemory { .. })
        ));
        assert!(st.on_alloc(8, 8, 1024).is_ok());
        assert_eq!(st.counters().oom_injected, 1);
    }

    #[test]
    fn capacity_cap_enforced() {
        let mut st = FaultState::default();
        st.install(FaultPlan::none().capacity_cap(100));
        assert!(st.on_alloc(60, 0, 1 << 20).is_ok());
        let err = st.on_alloc(60, 60, 1 << 20).unwrap_err();
        match err {
            DeviceError::OutOfMemory {
                available,
                capacity,
                ..
            } => {
                assert_eq!(capacity, 100);
                assert_eq!(available, 40);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn transient_then_recovers() {
        let mut st = FaultState::default();
        st.install(FaultPlan::none().transient_exec_errors(2));
        assert!(st.on_execute("map").is_err());
        assert!(st.on_execute("map").is_err());
        assert!(st.on_execute("map").is_ok());
        assert_eq!(st.counters().transient_exec_injected, 2);
    }

    #[test]
    fn broken_kernel_matches_variant() {
        let mut st = FaultState::default();
        st.install(FaultPlan::none().broken_kernel("filter_bitmap"));
        assert!(st.on_execute("filter_bitmap").is_err());
        assert!(st.on_execute("filter_bitmap@branchless").is_err());
        assert!(st.on_execute("map").is_ok());
        assert_eq!(st.counters().broken_kernel_hits, 2);
    }

    #[test]
    fn install_resets_ordinals() {
        let mut st = FaultState::default();
        st.install(FaultPlan::none().oom_on_allocation(1));
        assert!(st.on_alloc(8, 0, 64).is_err());
        st.install(FaultPlan::none().oom_on_allocation(1));
        assert!(st.on_alloc(8, 0, 64).is_err());
        assert_eq!(st.counters().oom_injected, 1, "counters reset on install");
    }
}
