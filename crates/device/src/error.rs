//! Device-layer errors.

use crate::buffer::BufferId;
use crate::sdk::SdkRepr;
use std::fmt;

/// Errors produced by device drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The device memory pool cannot satisfy an allocation.
    ///
    /// This is a *real* condition in the simulator: pools enforce the
    /// profile's capacity, which is how the whole-table baseline reproduces
    /// the paper's "Q3 cannot be executed" result.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
        /// Total pool capacity.
        capacity: u64,
    },
    /// The pinned (host-accessible) pool cannot satisfy an allocation.
    OutOfPinnedMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// A buffer id was not found in the pool.
    UnknownBuffer(BufferId),
    /// A buffer id was allocated twice.
    DuplicateBuffer(BufferId),
    /// A kernel name was not prepared on this device.
    KernelNotFound(String),
    /// The device does not support runtime kernel compilation
    /// (`prepare_kernel` is optional per the paper).
    CompilationUnsupported {
        /// Device name for the message.
        device: String,
    },
    /// A kernel was invoked with malformed arguments.
    BadKernelArgs {
        /// Kernel name.
        kernel: String,
        /// What went wrong.
        reason: String,
    },
    /// `transform_memory` was asked for a conversion with no table entry and
    /// host round-trips disabled.
    NoTransformPath {
        /// Source representation.
        from: SdkRepr,
        /// Target representation.
        to: SdkRepr,
    },
    /// A read or chunk operation went past the end of a buffer.
    RangeOutOfBounds {
        /// Buffer involved.
        id: BufferId,
        /// Requested end element.
        requested_end: usize,
        /// Buffer length in elements.
        len: usize,
    },
    /// Buffer payload type differed from what the operation expected.
    TypeMismatch {
        /// Buffer involved.
        id: BufferId,
        /// Expected payload kind.
        expected: &'static str,
        /// Actual payload kind.
        actual: &'static str,
    },
    /// The device was used before `initialize()`.
    NotInitialized,
    /// The device died permanently (hot-unplug, terminal fault): every
    /// operation on it fails with this error forever. Recovery must write
    /// the device off rather than retry.
    Gone {
        /// The dead device.
        device: crate::device::DeviceId,
    },
    /// Catch-all for driver-specific failures.
    Driver(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                requested,
                available,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B, {available} B free of {capacity} B"
            ),
            DeviceError::OutOfPinnedMemory {
                requested,
                available,
            } => write!(
                f,
                "pinned pool exhausted: requested {requested} B, {available} B free"
            ),
            DeviceError::UnknownBuffer(id) => write!(f, "unknown buffer {id:?}"),
            DeviceError::DuplicateBuffer(id) => write!(f, "buffer {id:?} already exists"),
            DeviceError::KernelNotFound(name) => write!(f, "kernel `{name}` not prepared"),
            DeviceError::CompilationUnsupported { device } => {
                write!(f, "device `{device}` does not support runtime compilation")
            }
            DeviceError::BadKernelArgs { kernel, reason } => {
                write!(f, "bad arguments for kernel `{kernel}`: {reason}")
            }
            DeviceError::NoTransformPath { from, to } => {
                write!(f, "no transform path from {from:?} to {to:?}")
            }
            DeviceError::RangeOutOfBounds {
                id,
                requested_end,
                len,
            } => write!(
                f,
                "range end {requested_end} out of bounds for buffer {id:?} of length {len}"
            ),
            DeviceError::TypeMismatch {
                id,
                expected,
                actual,
            } => write!(
                f,
                "buffer {id:?} type mismatch: expected {expected}, got {actual}"
            ),
            DeviceError::NotInitialized => write!(f, "device used before initialize()"),
            DeviceError::Gone { device } => {
                write!(f, "device {device} is gone (permanent failure)")
            }
            DeviceError::Driver(msg) => write!(f, "driver error: {msg}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Shorthand result alias for device operations.
pub type Result<T> = std::result::Result<T, DeviceError>;
