//! Bounded device memory pools.
//!
//! Capacity enforcement is load-bearing for the evaluation: the paper's
//! Fig. 7 argument (operator-at-a-time does not scale) and the HeavyDB Q3
//! out-of-memory result both hinge on allocations failing when the device is
//! full. The pool therefore accounts every buffer against the profile's
//! capacity and refuses overcommit with [`DeviceError::OutOfMemory`].

use crate::buffer::{Buffer, BufferData, BufferId};
use crate::error::{DeviceError, Result};
use crate::sdk::SdkRepr;
use std::collections::HashMap;

/// A bounded pool of device buffers plus a separate pinned (host-accessible)
/// region, as on a discrete GPU.
#[derive(Debug)]
pub struct BufferPool {
    buffers: HashMap<BufferId, Buffer>,
    capacity: u64,
    pinned_capacity: u64,
    used: u64,
    pinned_used: u64,
    peak: u64,
    /// Buffers temporarily taken by an executing kernel (see [`Self::take`]).
    taken: HashMap<BufferId, (bool, u64)>,
    /// Bytes promised to admitted queries by the multi-query scheduler's
    /// admission ledger (see [`Self::admission_reserve`]). Advisory:
    /// tracked separately from `used` and not charged by [`Self::insert`].
    admission_reserved: u64,
}

impl BufferPool {
    /// Creates a pool with the given device and pinned capacities in bytes.
    pub fn new(capacity: u64, pinned_capacity: u64) -> Self {
        BufferPool {
            buffers: HashMap::new(),
            capacity,
            pinned_capacity,
            used: 0,
            pinned_used: 0,
            peak: 0,
            taken: HashMap::new(),
            admission_reserved: 0,
        }
    }

    /// Total device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Re-sizes the device region to `bytes` (capacity re-negotiation, e.g.
    /// after membership changes). Existing allocations and admission
    /// reservations are untouched — a shrink below what is currently
    /// used/reserved leaves the pool over-subscribed, and only *new*
    /// allocations/reservations observe the lower cap; callers that need
    /// the over-subscription resolved (the scheduler's reservation ledger)
    /// must evict reservations themselves.
    pub fn set_capacity(&mut self, bytes: u64) {
        self.capacity = bytes;
    }

    /// Bytes currently allocated from the device region.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently allocated from the pinned region.
    pub fn pinned_used(&self) -> u64 {
        self.pinned_used
    }

    /// Highest device usage observed (for the Fig. 7 footprint traces).
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Remaining device bytes (zero while over-subscribed after a
    /// [`Self::set_capacity`] shrink).
    pub fn available(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }

    /// Number of live buffers (taken ones included).
    pub fn buffer_count(&self) -> usize {
        self.buffers.len() + self.taken.len()
    }

    /// Inserts a new buffer, charging its footprint against the right region.
    pub fn insert(&mut self, id: BufferId, buffer: Buffer) -> Result<()> {
        if self.buffers.contains_key(&id) || self.taken.contains_key(&id) {
            return Err(DeviceError::DuplicateBuffer(id));
        }
        let bytes = buffer.footprint();
        if buffer.pinned {
            if self.pinned_used + bytes > self.pinned_capacity {
                return Err(DeviceError::OutOfPinnedMemory {
                    requested: bytes,
                    available: self.pinned_capacity - self.pinned_used,
                });
            }
            self.pinned_used += bytes;
        } else {
            if self.used + bytes > self.capacity {
                return Err(DeviceError::OutOfMemory {
                    requested: bytes,
                    available: self.capacity.saturating_sub(self.used),
                    capacity: self.capacity,
                });
            }
            self.used += bytes;
            self.peak = self.peak.max(self.used);
        }
        self.buffers.insert(id, buffer);
        Ok(())
    }

    /// Borrows a buffer.
    pub fn get(&self, id: BufferId) -> Result<&Buffer> {
        self.buffers.get(&id).ok_or(DeviceError::UnknownBuffer(id))
    }

    /// Mutably borrows a buffer.
    ///
    /// Footprint growth must go through [`Self::update_accounting`] afterwards;
    /// kernels that resize payloads use [`Self::take`]/[`Self::restore`]
    /// instead, which re-account automatically.
    pub fn get_mut(&mut self, id: BufferId) -> Result<&mut Buffer> {
        self.buffers
            .get_mut(&id)
            .ok_or(DeviceError::UnknownBuffer(id))
    }

    /// Whether the pool holds `id` (taken buffers count as held).
    pub fn contains(&self, id: BufferId) -> bool {
        self.buffers.contains_key(&id) || self.taken.contains_key(&id)
    }

    /// Removes a buffer, releasing its bytes.
    pub fn remove(&mut self, id: BufferId) -> Result<Buffer> {
        let buffer = self
            .buffers
            .remove(&id)
            .ok_or(DeviceError::UnknownBuffer(id))?;
        let bytes = buffer.footprint();
        if buffer.pinned {
            self.pinned_used -= bytes;
        } else {
            self.used -= bytes;
        }
        Ok(buffer)
    }

    /// Temporarily removes a buffer for kernel execution.
    ///
    /// The bytes stay charged (the memory is still allocated on the device);
    /// [`Self::restore`] re-inserts the buffer and adjusts accounting if the
    /// kernel grew or shrank the payload.
    pub fn take(&mut self, id: BufferId) -> Result<Buffer> {
        let buffer = self
            .buffers
            .remove(&id)
            .ok_or(DeviceError::UnknownBuffer(id))?;
        self.taken.insert(id, (buffer.pinned, buffer.footprint()));
        Ok(buffer)
    }

    /// Restores a buffer previously [`Self::take`]n, re-checking capacity
    /// for any growth.
    ///
    /// On failure (the grown buffer no longer fits) the buffer is
    /// **consumed and its slot freed** — like a failed `realloc`, the
    /// allocation cannot exist on the device, so keeping its bytes charged
    /// would leak pool capacity across error recovery.
    pub fn restore(&mut self, id: BufferId, buffer: Buffer) -> Result<()> {
        let (was_pinned, old_bytes) = self
            .taken
            .remove(&id)
            .ok_or(DeviceError::UnknownBuffer(id))?;
        let new_bytes = buffer.footprint();
        debug_assert_eq!(was_pinned, buffer.pinned, "pinnedness changed on restore");
        if buffer.pinned {
            let adjusted = self.pinned_used - old_bytes + new_bytes;
            if adjusted > self.pinned_capacity {
                // Free the slot entirely (failed-realloc semantics).
                self.pinned_used -= old_bytes;
                return Err(DeviceError::OutOfPinnedMemory {
                    requested: new_bytes - old_bytes,
                    available: self.pinned_capacity - self.pinned_used,
                });
            }
            self.pinned_used = adjusted;
        } else {
            let adjusted = self.used - old_bytes + new_bytes;
            if adjusted > self.capacity {
                self.used -= old_bytes;
                return Err(DeviceError::OutOfMemory {
                    requested: new_bytes - old_bytes,
                    available: self.capacity.saturating_sub(self.used),
                    capacity: self.capacity,
                });
            }
            self.used = adjusted;
            self.peak = self.peak.max(self.used);
        }
        self.buffers.insert(id, buffer);
        Ok(())
    }

    /// Re-checks accounting after an in-place mutation through
    /// [`Self::get_mut`] changed a buffer's footprint.
    pub fn update_accounting(&mut self, id: BufferId, old_footprint: u64) -> Result<()> {
        let buffer = self
            .buffers
            .get(&id)
            .ok_or(DeviceError::UnknownBuffer(id))?;
        let new_bytes = buffer.footprint();
        let pinned = buffer.pinned;
        if pinned {
            self.pinned_used = self.pinned_used - old_footprint + new_bytes;
        } else {
            self.used = self.used - old_footprint + new_bytes;
            self.peak = self.peak.max(self.used);
            if self.used > self.capacity {
                return Err(DeviceError::OutOfMemory {
                    requested: new_bytes - old_footprint,
                    available: 0,
                    capacity: self.capacity,
                });
            }
        }
        Ok(())
    }

    /// Removes every buffer (end-of-query cleanup / delete phase).
    pub fn clear(&mut self) {
        self.buffers.clear();
        self.taken.clear();
        self.used = 0;
        self.pinned_used = 0;
    }

    /// Resets the peak-usage watermark (between experiments).
    pub fn reset_peak(&mut self) {
        self.peak = self.used;
    }

    /// Ids of all resident buffers (unordered).
    pub fn ids(&self) -> Vec<BufferId> {
        self.buffers.keys().copied().collect()
    }

    /// Reserves `bytes` of capacity in the admission ledger, failing with
    /// [`DeviceError::OutOfMemory`] when the outstanding reservations plus
    /// this one would exceed the device capacity.
    ///
    /// Admission reservations are **advisory**: they cap what the
    /// multi-query scheduler concurrently admits so admitted queries cannot
    /// OOM each other, but [`Self::insert`] does not consult them — each
    /// admitted query allocates freely within the capacity its own
    /// reservation already vouched for, and queries that over-run their
    /// estimate still hit the hard `used`-vs-`capacity` check.
    pub fn admission_reserve(&mut self, bytes: u64) -> Result<()> {
        if self.admission_reserved + bytes > self.capacity {
            return Err(DeviceError::OutOfMemory {
                requested: bytes,
                available: self.capacity.saturating_sub(self.admission_reserved),
                capacity: self.capacity,
            });
        }
        self.admission_reserved += bytes;
        Ok(())
    }

    /// Releases `bytes` from the admission ledger (saturating, so a
    /// double-release cannot underflow).
    pub fn admission_release(&mut self, bytes: u64) {
        self.admission_reserved = self.admission_reserved.saturating_sub(bytes);
    }

    /// Bytes currently promised to admitted queries.
    pub fn admission_reserved(&self) -> u64 {
        self.admission_reserved
    }

    /// Capacity not yet promised to any admitted query (zero while
    /// over-subscribed after a [`Self::set_capacity`] shrink).
    pub fn admission_available(&self) -> u64 {
        self.capacity.saturating_sub(self.admission_reserved)
    }

    /// Convenience: allocates a reserved-but-empty buffer.
    pub fn reserve(&mut self, id: BufferId, bytes: u64, repr: SdkRepr, pinned: bool) -> Result<()> {
        self.insert(
            id,
            Buffer {
                data: BufferData::Raw(Vec::new()),
                repr,
                pinned,
                reserved_bytes: bytes,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(n: usize) -> Buffer {
        Buffer {
            data: BufferData::I64(vec![0; n]),
            repr: SdkRepr::HostVec,
            pinned: false,
            reserved_bytes: 0,
        }
    }

    #[test]
    fn capacity_enforced() {
        let mut pool = BufferPool::new(100, 0);
        pool.insert(BufferId(1), buf(10)).unwrap(); // 80 bytes
        let err = pool.insert(BufferId(2), buf(10)).unwrap_err();
        match err {
            DeviceError::OutOfMemory {
                requested,
                available,
                capacity,
            } => {
                assert_eq!(requested, 80);
                assert_eq!(available, 20);
                assert_eq!(capacity, 100);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(pool.used(), 80);
    }

    #[test]
    fn set_capacity_shrink_is_safe_while_oversubscribed() {
        let mut pool = BufferPool::new(1000, 0);
        pool.insert(BufferId(1), buf(10)).unwrap(); // 80 bytes
        pool.admission_reserve(500).unwrap();
        pool.set_capacity(50); // below both `used` and `admission_reserved`
        assert_eq!(pool.capacity(), 50);
        assert_eq!(pool.available(), 0, "no underflow while over-subscribed");
        assert_eq!(pool.admission_available(), 0);
        assert!(pool.insert(BufferId(2), buf(1)).is_err());
        assert!(pool.admission_reserve(1).is_err());
        // Releasing resolves the over-subscription; new work fits again.
        pool.admission_release(500);
        pool.remove(BufferId(1)).unwrap();
        pool.insert(BufferId(3), buf(1)).unwrap();
        pool.admission_reserve(10).unwrap();
    }

    #[test]
    fn pinned_capacity_separate() {
        let mut pool = BufferPool::new(100, 50);
        let pinned = Buffer {
            pinned: true,
            ..buf(5)
        };
        pool.insert(BufferId(1), pinned.clone()).unwrap(); // 40 pinned
        assert_eq!(pool.pinned_used(), 40);
        assert_eq!(pool.used(), 0);
        assert!(matches!(
            pool.insert(BufferId(2), pinned).unwrap_err(),
            DeviceError::OutOfPinnedMemory { .. }
        ));
    }

    #[test]
    fn duplicate_rejected() {
        let mut pool = BufferPool::new(1000, 0);
        pool.insert(BufferId(1), buf(1)).unwrap();
        assert!(matches!(
            pool.insert(BufferId(1), buf(1)).unwrap_err(),
            DeviceError::DuplicateBuffer(_)
        ));
    }

    #[test]
    fn remove_releases() {
        let mut pool = BufferPool::new(100, 0);
        pool.insert(BufferId(1), buf(10)).unwrap();
        pool.remove(BufferId(1)).unwrap();
        assert_eq!(pool.used(), 0);
        assert!(pool.remove(BufferId(1)).is_err());
        // Peak remembers the high-water mark.
        assert_eq!(pool.peak(), 80);
        pool.reset_peak();
        assert_eq!(pool.peak(), 0);
    }

    #[test]
    fn take_restore_reaccounts_growth() {
        let mut pool = BufferPool::new(100, 0);
        pool.insert(BufferId(1), buf(2)).unwrap(); // 16
        let mut b = pool.take(BufferId(1)).unwrap();
        assert!(pool.contains(BufferId(1)), "taken buffers still held");
        if let BufferData::I64(v) = &mut b.data {
            v.extend_from_slice(&[0; 8]); // now 80 bytes
        }
        pool.restore(BufferId(1), b).unwrap();
        assert_eq!(pool.used(), 80);
    }

    #[test]
    fn restore_rejects_overgrowth() {
        let mut pool = BufferPool::new(100, 0);
        pool.insert(BufferId(1), buf(2)).unwrap();
        let mut b = pool.take(BufferId(1)).unwrap();
        if let BufferData::I64(v) = &mut b.data {
            v.extend_from_slice(&[0; 20]); // 176 bytes > 100
        }
        assert!(pool.restore(BufferId(1), b).is_err());
    }

    #[test]
    fn reserve_counts_reservation() {
        let mut pool = BufferPool::new(100, 0);
        pool.reserve(BufferId(7), 64, SdkRepr::ClBuffer, false)
            .unwrap();
        assert_eq!(pool.used(), 64);
        assert_eq!(pool.get(BufferId(7)).unwrap().repr, SdkRepr::ClBuffer);
    }

    #[test]
    fn admission_ledger_caps_at_capacity() {
        let mut pool = BufferPool::new(100, 0);
        pool.admission_reserve(60).unwrap();
        assert_eq!(pool.admission_reserved(), 60);
        assert_eq!(pool.admission_available(), 40);
        assert!(matches!(
            pool.admission_reserve(50).unwrap_err(),
            DeviceError::OutOfMemory {
                requested: 50,
                available: 40,
                ..
            }
        ));
        // Reservations are advisory: allocation still succeeds regardless.
        pool.insert(BufferId(1), buf(10)).unwrap();
        assert_eq!(pool.used(), 80);
        pool.admission_release(60);
        assert_eq!(pool.admission_reserved(), 0);
        pool.admission_release(1); // saturating, no underflow
        assert_eq!(pool.admission_reserved(), 0);
        // End-of-query buffer cleanup leaves the cross-query ledger alone.
        pool.admission_reserve(30).unwrap();
        pool.clear();
        assert_eq!(pool.admission_reserved(), 30);
    }

    #[test]
    fn clear_resets() {
        let mut pool = BufferPool::new(1000, 100);
        pool.insert(BufferId(1), buf(10)).unwrap();
        pool.clear();
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.buffer_count(), 0);
    }
}
