//! Registry of plugged devices.

use crate::device::{Device, DeviceId, DeviceInfo};
use crate::error::{DeviceError, Result};
use std::collections::BTreeMap;

/// The set of devices plugged into the engine.
///
/// The runtime layer addresses devices purely by [`DeviceId`] (the primitive
/// graph's device annotations), so adding a device here is the *only* step
/// needed to make it schedulable.
#[derive(Default)]
pub struct DeviceRegistry {
    devices: BTreeMap<DeviceId, Box<dyn Device>>,
    next_id: u32,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// Plugs a device, assigning it the next free id.
    pub fn add(&mut self, device: Box<dyn Device>) -> DeviceId {
        let id = DeviceId(self.next_id);
        self.next_id += 1;
        self.devices.insert(id, device);
        id
    }

    /// Borrows a device.
    pub fn get(&self, id: DeviceId) -> Result<&dyn Device> {
        self.devices
            .get(&id)
            .map(|d| d.as_ref())
            .ok_or(DeviceError::Driver(format!("no device {id}")))
    }

    /// Mutably borrows a device.
    pub fn get_mut(&mut self, id: DeviceId) -> Result<&mut Box<dyn Device>> {
        self.devices
            .get_mut(&id)
            .ok_or(DeviceError::Driver(format!("no device {id}")))
    }

    /// Unplugs a device, returning it.
    pub fn remove(&mut self, id: DeviceId) -> Option<Box<dyn Device>> {
        self.devices.remove(&id)
    }

    /// Infos of all plugged devices, ordered by id.
    pub fn infos(&self) -> Vec<DeviceInfo> {
        self.devices.values().map(|d| d.info().clone()).collect()
    }

    /// Ids of all plugged devices, ascending.
    pub fn ids(&self) -> Vec<DeviceId> {
        self.devices.keys().copied().collect()
    }

    /// Number of plugged devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when no devices are plugged.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Resets every device (buffers, clocks) between experiments.
    pub fn reset_all(&mut self) {
        for d in self.devices.values_mut() {
            d.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DeviceProfile;

    #[test]
    fn add_get_remove() {
        let mut reg = DeviceRegistry::new();
        assert!(reg.is_empty());
        let id0 = reg.add(Box::new(DeviceProfile::host().build(DeviceId(0))));
        let id1 = reg.add(Box::new(DeviceProfile::cuda_rtx2080ti().build(DeviceId(1))));
        assert_eq!(id0, DeviceId(0));
        assert_eq!(id1, DeviceId(1));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.ids(), vec![id0, id1]);
        assert!(reg.get(id1).is_ok());
        assert!(reg.get(DeviceId(99)).is_err());
        assert!(reg.remove(id0).is_some());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn infos_ordered() {
        let mut reg = DeviceRegistry::new();
        reg.add(Box::new(DeviceProfile::opencl_cpu_i7().build(DeviceId(0))));
        reg.add(Box::new(DeviceProfile::cuda_rtx2080ti().build(DeviceId(1))));
        let infos = reg.infos();
        assert_eq!(infos.len(), 2);
        assert!(infos[0].name.contains("opencl"));
        assert!(infos[1].name.contains("cuda"));
    }
}
