//! Registry of plugged devices.

use crate::device::{Device, DeviceId, DeviceInfo};
use crate::error::{DeviceError, Result};
use std::collections::BTreeMap;

/// The set of devices plugged into the engine.
///
/// The runtime layer addresses devices purely by [`DeviceId`] (the primitive
/// graph's device annotations), so adding a device here is the *only* step
/// needed to make it schedulable.
#[derive(Default)]
pub struct DeviceRegistry {
    devices: BTreeMap<DeviceId, Box<dyn Device>>,
    next_id: u32,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// Plugs a device, assigning it the next free id.
    pub fn add(&mut self, device: Box<dyn Device>) -> DeviceId {
        let id = DeviceId(self.next_id);
        self.next_id += 1;
        self.devices.insert(id, device);
        id
    }

    /// The id the next [`DeviceRegistry::add`] will assign. Ids are never
    /// reused: a removed device's id stays retired, so callers building a
    /// device ahead of plugging it (profiles bake the id into
    /// [`DeviceInfo`]) must use this instead of counting live devices.
    pub fn peek_next_id(&self) -> DeviceId {
        DeviceId(self.next_id)
    }

    /// Borrows a device.
    pub fn get(&self, id: DeviceId) -> Result<&dyn Device> {
        self.devices
            .get(&id)
            .map(|d| d.as_ref())
            .ok_or(DeviceError::Driver(format!("no device {id}")))
    }

    /// Mutably borrows a device.
    pub fn get_mut(&mut self, id: DeviceId) -> Result<&mut Box<dyn Device>> {
        self.devices
            .get_mut(&id)
            .ok_or(DeviceError::Driver(format!("no device {id}")))
    }

    /// Unplugs a device, returning it.
    pub fn remove(&mut self, id: DeviceId) -> Option<Box<dyn Device>> {
        self.devices.remove(&id)
    }

    /// Infos of all plugged devices, ordered by id.
    pub fn infos(&self) -> Vec<DeviceInfo> {
        self.devices.values().map(|d| d.info().clone()).collect()
    }

    /// Ids of all plugged devices, ascending.
    pub fn ids(&self) -> Vec<DeviceId> {
        self.devices.keys().copied().collect()
    }

    /// Number of plugged devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when no devices are plugged.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Resets every device (buffers, clocks, fault counters) between
    /// experiments, so each iteration starts from a clean slate.
    pub fn reset_all(&mut self) {
        for d in self.devices.values_mut() {
            d.reset();
            d.reset_fault_counters();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DeviceProfile;

    #[test]
    fn add_get_remove() {
        let mut reg = DeviceRegistry::new();
        assert!(reg.is_empty());
        let id0 = reg.add(Box::new(DeviceProfile::host().build(DeviceId(0))));
        let id1 = reg.add(Box::new(DeviceProfile::cuda_rtx2080ti().build(DeviceId(1))));
        assert_eq!(id0, DeviceId(0));
        assert_eq!(id1, DeviceId(1));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.ids(), vec![id0, id1]);
        assert!(reg.get(id1).is_ok());
        assert!(reg.get(DeviceId(99)).is_err());
        assert!(reg.remove(id0).is_some());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn ids_are_never_reused_after_remove() {
        let mut reg = DeviceRegistry::new();
        let id0 = reg.add(Box::new(DeviceProfile::host().build(DeviceId(0))));
        assert_eq!(reg.peek_next_id(), DeviceId(1));
        reg.remove(id0);
        // The retired id stays retired; the next add gets a fresh one.
        assert_eq!(reg.peek_next_id(), DeviceId(1));
        let id1 = reg.add(Box::new(DeviceProfile::host().build(reg.peek_next_id())));
        assert_eq!(id1, DeviceId(1));
    }

    #[test]
    fn reset_all_clears_fault_counters() {
        use crate::fault::FaultPlan;
        let mut reg = DeviceRegistry::new();
        let id = reg.add(Box::new(DeviceProfile::cuda_rtx2080ti().build(DeviceId(0))));
        {
            let dev = reg.get_mut(id).unwrap();
            dev.initialize().unwrap();
            dev.set_fault_plan(FaultPlan::none().oom_on_allocation(1));
            assert!(dev.prepare_memory(crate::buffer::BufferId(1), 64).is_err());
            assert_eq!(dev.fault_counters().oom_injected, 1);
        }
        reg.reset_all();
        let dev = reg.get(id).unwrap();
        assert_eq!(
            dev.fault_counters().total(),
            0,
            "reset_all must clear accumulated fault counters"
        );
    }

    #[test]
    fn infos_ordered() {
        let mut reg = DeviceRegistry::new();
        reg.add(Box::new(DeviceProfile::opencl_cpu_i7().build(DeviceId(0))));
        reg.add(Box::new(DeviceProfile::cuda_rtx2080ti().build(DeviceId(1))));
        let infos = reg.infos();
        assert_eq!(infos.len(), 2);
        assert!(infos[0].name.contains("opencl"));
        assert!(infos[1].name.contains("cuda"));
    }
}
