//! Cross-query device health tracking with per-device **and per-kernel**
//! circuit breakers.
//!
//! PR 1 gave the executor *within-run* recovery (chunk backoff, pipeline
//! fallback), but every query still started blind: a device that just burned
//! four retries on a kernel got picked again by the next query. The
//! [`DeviceHealthRegistry`] is the missing feedback channel — it outlives a
//! single query, records failures per device and per `(device, kernel)`,
//! and drives three decisions in the runtime:
//!
//! * **Kernel quarantine.** Every `(device, kernel)` pair carries its own
//!   circuit breaker with its own trip/probe counters: `Closed → Open` after
//!   [`HealthPolicy::broken_kernel_threshold`] consecutive failures of that
//!   kernel on that device. Placement and fallback never send work that
//!   resolves to an `Open` kernel there — but the device itself stays
//!   available for everything else. A broken kernel no longer quarantines an
//!   otherwise healthy device.
//! * **Device quarantine.** The device-level breaker trips only on evidence
//!   of *device-wide* sickness: a consecutive-failure streak of at least
//!   [`HealthPolicy::failure_threshold`] spanning at least
//!   [`HealthPolicy::device_trip_min_kernels`] distinct kernels.
//!   Quarantined (`Open`) devices are skipped by initial placement, by the
//!   hub router's source choice, and by `repoint_pipeline`.
//! * **Probing.** After the respective cool-down (counted in completed
//!   queries) a breaker moves `Open → HalfOpen`; one probe per query is
//!   admitted. A successful probe restores `Closed` and clears the failure
//!   memory; a failed probe re-opens the breaker for another cool-down.
//!   Kernel probes are granted per `(device, kernel)` and resolved by
//!   [`DeviceHealthRegistry::record_kernel_success`].
//! * **Recovery-aware placement cost.** [`DeviceHealthRegistry::retry_penalty_ns`]
//!   is the expected retry cost of placing on a device — its observed
//!   failure rate times the average modeled time a failed attempt wasted.
//!   Fed into [`crate::cost::CostModel::placement_cost_ns`], it makes flaky
//!   or memory-tight devices lose placement ties instead of winning them.
//!
//! The whole registry state round-trips through
//! [`DeviceHealthRegistry::to_json`] / [`DeviceHealthRegistry::from_json`] so
//! breaker and wasted-time memory survives engine restarts.
//!
//! Everything here is deterministic: state transitions depend only on the
//! sequence of recorded events, and the snapshot exports use `BTreeMap`s so
//! reports are byte-stable.

use crate::device::DeviceId;
use std::collections::{BTreeMap, BTreeSet};

/// Tunables of the circuit breakers and placement penalty.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthPolicy {
    /// Consecutive kernel failures (without an intervening success) that
    /// trip a device's breaker `Closed → Open` — provided the streak spans
    /// at least [`HealthPolicy::device_trip_min_kernels`] distinct kernels.
    pub failure_threshold: u32,
    /// Completed queries a tripped device breaker stays `Open` before a
    /// `HalfOpen` probe is admitted. The query that trips the breaker does
    /// not count.
    pub cooldown_queries: u32,
    /// Consecutive failures of one kernel on one device that trip that
    /// `(device, kernel)` breaker `Closed → Open` (the kernel counts as
    /// *known broken* there; placement skips such candidates).
    pub broken_kernel_threshold: u64,
    /// Completed queries a tripped kernel breaker stays `Open` before a
    /// `HalfOpen` kernel probe is admitted.
    pub kernel_cooldown_queries: u32,
    /// Distinct kernels a consecutive-failure streak must span before the
    /// *device* breaker trips. With the default of 2, a single broken kernel
    /// trips its own breaker but never quarantines the device.
    pub device_trip_min_kernels: u32,
    /// Minimum smoothed actual/expected latency ratio before a chronically
    /// slow device can trip [`BreakerState::SlowOpen`].
    pub slow_trip_ratio: f64,
    /// Watchdog overruns that must be recorded before the slow breaker can
    /// trip (one slow chunk is noise; a run of them is a straggler).
    pub slow_trip_min_overruns: u32,
    /// Completed queries a `SlowOpen` breaker waits before a `HalfOpen`
    /// probe is admitted.
    pub slow_cooldown_queries: u32,
    /// Master switch: when `false` the registry records nothing and reports
    /// every device healthy (useful for A/B benchmarking the subsystem).
    pub enabled: bool,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            failure_threshold: 2,
            cooldown_queries: 2,
            broken_kernel_threshold: 2,
            kernel_cooldown_queries: 2,
            device_trip_min_kernels: 2,
            slow_trip_ratio: 4.0,
            slow_trip_min_overruns: 3,
            slow_cooldown_queries: 2,
            enabled: true,
        }
    }
}

/// Circuit-breaker state of one device or one `(device, kernel)` pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: placement uses the device/kernel normally.
    #[default]
    Closed,
    /// Quarantined: skipped by placement, routing and fallback until the
    /// cool-down elapses.
    Open {
        /// Completed queries remaining before the breaker half-opens.
        cooldown_left: u32,
    },
    /// Cooling down finished: one probe per query is admitted to test
    /// whether the device/kernel recovered.
    HalfOpen,
    /// Latency-quarantined: the device answers correctly but chronically
    /// overruns its watchdog budgets, so placement avoids it exactly as if
    /// it were `Open`. Cools down into `HalfOpen` like `Open` does.
    SlowOpen {
        /// Completed queries remaining before the breaker half-opens.
        cooldown_left: u32,
    },
}

impl BreakerState {
    /// Stable lowercase label for reports (`"closed"`, `"open"`,
    /// `"half-open"`, `"slow-open"`).
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
            BreakerState::SlowOpen { .. } => "slow-open",
        }
    }

    fn cooldown(&self) -> u32 {
        match self {
            BreakerState::Open { cooldown_left } | BreakerState::SlowOpen { cooldown_left } => {
                *cooldown_left
            }
            _ => 0,
        }
    }

    fn from_label(label: &str, cooldown_left: u32) -> Option<Self> {
        match label {
            "closed" => Some(BreakerState::Closed),
            "open" => Some(BreakerState::Open { cooldown_left }),
            "half-open" => Some(BreakerState::HalfOpen),
            "slow-open" => Some(BreakerState::SlowOpen { cooldown_left }),
            _ => None,
        }
    }
}

/// Per-device health record.
#[derive(Clone, Debug, Default)]
struct DeviceHealth {
    state: BreakerState,
    /// A `HalfOpen` probe pipeline is in flight this query.
    probing: bool,
    /// The breaker tripped during the current query (its cool-down only
    /// starts counting from the *next* completed query).
    tripped_this_query: bool,
    consecutive_failures: u32,
    /// Distinct kernels seen in the current consecutive-failure streak.
    streak_kernels: BTreeSet<String>,
    total_failures: u64,
    total_attempts: u64,
    ooms: u64,
    wasted_retry_ns: f64,
    /// Watchdog overruns recorded (cleared by a successful probe).
    latency_overruns: u32,
    /// Smoothed actual/expected duration ratio of overrunning operations.
    slow_ratio_ewma: f64,
    /// Smoothed excess nanoseconds per overrunning operation.
    overrun_ns_ewma: f64,
    /// Transfer corruptions detected on this device (cleared by a successful
    /// probe).
    corruptions: u64,
}

/// Per-`(device, kernel)` breaker record with its own trip/probe counters.
#[derive(Clone, Debug, Default)]
struct KernelHealth {
    state: BreakerState,
    /// A kernel probe is in flight this query.
    probing: bool,
    tripped_this_query: bool,
    consecutive_failures: u64,
    total_failures: u64,
    /// Times this kernel breaker tripped (`Closed → Open` or failed probe).
    trips: u64,
    /// Kernel probes admitted.
    probes: u64,
}

/// What a recorded kernel failure tripped, if anything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailureVerdict {
    /// The *device* breaker tripped (`Closed → Open`, or a failed `HalfOpen`
    /// device probe re-opening).
    pub device_tripped: bool,
    /// The `(device, kernel)` breaker tripped.
    pub kernel_tripped: bool,
}

/// Deterministic export of one device's health (for `ExecutionStats`).
#[derive(Clone, Debug, PartialEq)]
pub struct HealthSnapshot {
    /// Breaker state at snapshot time.
    pub state: BreakerState,
    /// Kernel failures recorded (lifetime, cleared by a successful probe).
    pub kernel_failures: u64,
    /// Out-of-memory events recorded (lifetime, cleared by a successful
    /// probe).
    pub ooms: u64,
    /// Current expected-retry placement penalty in modeled nanoseconds.
    pub retry_penalty_ns: f64,
    /// Kernels currently quarantined (`Open`) on this device.
    pub open_kernels: u64,
    /// Watchdog overruns recorded against this device.
    pub latency_overruns: u32,
    /// Transfer corruptions detected on this device.
    pub corruptions: u64,
}

/// Deterministic export of one `(device, kernel)` breaker.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelSnapshot {
    /// Breaker state at snapshot time.
    pub state: BreakerState,
    /// Failures of this kernel on this device (lifetime, cleared by a
    /// successful kernel probe).
    pub failures: u64,
    /// Times this breaker tripped.
    pub trips: u64,
    /// Kernel probes admitted.
    pub probes: u64,
}

/// Cross-query device health registry. Owned by the executor; shared across
/// queries (and across concurrently scheduled queries).
#[derive(Clone, Debug, Default)]
pub struct DeviceHealthRegistry {
    policy: HealthPolicy,
    devices: BTreeMap<DeviceId, DeviceHealth>,
    kernels: BTreeMap<(DeviceId, String), KernelHealth>,
}

impl DeviceHealthRegistry {
    /// Creates a registry under the given policy.
    pub fn new(policy: HealthPolicy) -> Self {
        DeviceHealthRegistry {
            policy,
            ..Default::default()
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Replaces the policy (existing state is kept).
    pub fn set_policy(&mut self, policy: HealthPolicy) {
        self.policy = policy;
    }

    /// Forgets all recorded health (e.g. between experiments).
    pub fn reset(&mut self) {
        self.devices.clear();
        self.kernels.clear();
    }

    /// Drops every record for `device` — its device breaker and all of its
    /// `(device, kernel)` breakers. Called when a device is unplugged so the
    /// registry (and its JSON export) never reports a ghost device, and a
    /// later hot-add reusing nothing starts with a clean slate.
    pub fn forget_device(&mut self, device: DeviceId) {
        self.devices.remove(&device);
        self.kernels.retain(|(d, _), _| *d != device);
    }

    /// Registers a hot-added `device` in `HalfOpen`: it earns traffic
    /// through the existing probe ramp (one probe pipeline per query,
    /// promoted to `Closed` by [`Self::record_success`]) instead of
    /// instantly absorbing a full share of placement.
    pub fn admit_half_open(&mut self, device: DeviceId) {
        if !self.policy.enabled {
            return;
        }
        let h = self.entry(device);
        *h = DeviceHealth {
            state: BreakerState::HalfOpen,
            ..DeviceHealth::default()
        };
    }

    fn entry(&mut self, device: DeviceId) -> &mut DeviceHealth {
        self.devices.entry(device).or_default()
    }

    /// Records that a pipeline attempt is about to run on `device` (the
    /// denominator of the failure rate).
    pub fn record_attempt(&mut self, device: DeviceId) {
        if !self.policy.enabled {
            return;
        }
        self.entry(device).total_attempts += 1;
    }

    /// Records a kernel execution failure of `kernel` on `device` that
    /// wasted `wasted_ns` of modeled time. Returns which breakers this
    /// failure tripped: the `(device, kernel)` breaker after
    /// [`HealthPolicy::broken_kernel_threshold`] consecutive failures, the
    /// device breaker only when the streak spans
    /// [`HealthPolicy::device_trip_min_kernels`] distinct kernels.
    pub fn record_kernel_failure(
        &mut self,
        device: DeviceId,
        kernel: &str,
        wasted_ns: f64,
    ) -> FailureVerdict {
        if !self.policy.enabled {
            return FailureVerdict::default();
        }
        let policy = self.policy;
        // Kernel-level breaker first.
        let k = self
            .kernels
            .entry((device, kernel.to_string()))
            .or_default();
        k.total_failures += 1;
        k.consecutive_failures += 1;
        let kernel_tripped = match k.state {
            BreakerState::HalfOpen if k.probing => {
                k.state = BreakerState::Open {
                    cooldown_left: policy.kernel_cooldown_queries,
                };
                k.probing = false;
                k.tripped_this_query = true;
                k.trips += 1;
                true
            }
            BreakerState::Closed
                if k.consecutive_failures >= policy.broken_kernel_threshold.max(1) =>
            {
                k.state = BreakerState::Open {
                    cooldown_left: policy.kernel_cooldown_queries,
                };
                k.tripped_this_query = true;
                k.trips += 1;
                true
            }
            _ => false,
        };
        // Device-level aggregates and breaker.
        let h = self.entry(device);
        h.total_failures += 1;
        h.consecutive_failures += 1;
        h.streak_kernels.insert(kernel.to_string());
        h.wasted_retry_ns += wasted_ns.max(0.0);
        let device_tripped = match h.state {
            BreakerState::HalfOpen if h.probing => {
                h.state = BreakerState::Open {
                    cooldown_left: policy.cooldown_queries,
                };
                h.probing = false;
                h.tripped_this_query = true;
                true
            }
            BreakerState::Closed
                if h.consecutive_failures >= policy.failure_threshold.max(1)
                    && h.streak_kernels.len() >= policy.device_trip_min_kernels.max(1) as usize =>
            {
                h.state = BreakerState::Open {
                    cooldown_left: policy.cooldown_queries,
                };
                h.tripped_this_query = true;
                true
            }
            _ => false,
        };
        FailureVerdict {
            device_tripped,
            kernel_tripped,
        }
    }

    /// Records an out-of-memory event on `device` that wasted `wasted_ns`
    /// of modeled time. OOM pressure feeds the placement penalty but does
    /// not trip a `Closed` breaker (chunk backoff owns that failure class);
    /// it *does* fail an in-flight `HalfOpen` device probe. Returns `true`
    /// when the probe was failed (breaker re-opened).
    pub fn record_oom(&mut self, device: DeviceId, wasted_ns: f64) -> bool {
        if !self.policy.enabled {
            return false;
        }
        let cooldown = self.policy.cooldown_queries;
        let h = self.entry(device);
        h.ooms += 1;
        h.total_failures += 1;
        h.wasted_retry_ns += wasted_ns.max(0.0);
        if h.state == BreakerState::HalfOpen && h.probing {
            h.state = BreakerState::Open {
                cooldown_left: cooldown,
            };
            h.probing = false;
            h.tripped_this_query = true;
            return true;
        }
        false
    }

    /// Records a successful pipeline execution on `device`. Returns `true`
    /// when this success completed a `HalfOpen` device probe (breaker
    /// restored to `Closed` and the device's failure memory — including its
    /// kernel breakers — cleared).
    pub fn record_success(&mut self, device: DeviceId) -> bool {
        if !self.policy.enabled {
            return false;
        }
        let h = self.entry(device);
        h.consecutive_failures = 0;
        h.streak_kernels.clear();
        if h.state == BreakerState::HalfOpen && h.probing {
            h.state = BreakerState::Closed;
            h.probing = false;
            h.total_failures = 0;
            h.ooms = 0;
            h.wasted_retry_ns = 0.0;
            h.latency_overruns = 0;
            h.slow_ratio_ewma = 0.0;
            h.overrun_ns_ewma = 0.0;
            h.corruptions = 0;
            self.kernels.retain(|(d, _), _| *d != device);
            return true;
        }
        false
    }

    /// Records that `kernel` executed successfully on `device` (the executor
    /// reports every kernel a successful pipeline resolved). Resets the
    /// kernel's consecutive-failure streak; returns `true` when this success
    /// completed a `HalfOpen` kernel probe (kernel breaker restored to
    /// `Closed`, its failure memory cleared, and — when no other kernel on
    /// the device is still bad — the device's wasted-time memory cleared
    /// too).
    pub fn record_kernel_success(&mut self, device: DeviceId, kernel: &str) -> bool {
        if !self.policy.enabled {
            return false;
        }
        let Some(k) = self.kernels.get_mut(&(device, kernel.to_string())) else {
            return false;
        };
        k.consecutive_failures = 0;
        if k.state == BreakerState::HalfOpen && k.probing {
            k.state = BreakerState::Closed;
            k.probing = false;
            k.total_failures = 0;
            let all_clear = self
                .kernels
                .iter()
                .filter(|((d, _), _)| *d == device)
                .all(|(_, k)| k.state == BreakerState::Closed && k.total_failures == 0);
            if all_clear {
                if let Some(h) = self.devices.get_mut(&device) {
                    if h.state == BreakerState::Closed {
                        h.total_failures = 0;
                        h.ooms = 0;
                        h.wasted_retry_ns = 0.0;
                    }
                }
            }
            return true;
        }
        false
    }

    /// Records a watchdog overrun on `device`: an operation the cost model
    /// expected to take `clean_ns` actually took `actual_ns`. Feeds the
    /// latency EWMAs and trips the `SlowOpen` breaker once the device has
    /// overrun at least [`HealthPolicy::slow_trip_min_overruns`] times with
    /// a smoothed ratio of at least [`HealthPolicy::slow_trip_ratio`].
    /// Returns `true` when this overrun tripped the breaker.
    pub fn record_latency_overrun(
        &mut self,
        device: DeviceId,
        clean_ns: f64,
        actual_ns: f64,
    ) -> bool {
        if !self.policy.enabled {
            return false;
        }
        let policy = self.policy;
        let h = self.entry(device);
        let ratio = if clean_ns > 0.0 {
            actual_ns / clean_ns
        } else {
            policy.slow_trip_ratio
        };
        let excess = (actual_ns - clean_ns).max(0.0);
        if h.latency_overruns == 0 {
            h.slow_ratio_ewma = ratio;
            h.overrun_ns_ewma = excess;
        } else {
            h.slow_ratio_ewma = 0.5 * h.slow_ratio_ewma + 0.5 * ratio;
            h.overrun_ns_ewma = 0.5 * h.overrun_ns_ewma + 0.5 * excess;
        }
        h.latency_overruns = h.latency_overruns.saturating_add(1);
        if h.state == BreakerState::Closed
            && h.latency_overruns >= policy.slow_trip_min_overruns.max(1)
            && h.slow_ratio_ewma >= policy.slow_trip_ratio
        {
            h.state = BreakerState::SlowOpen {
                cooldown_left: policy.slow_cooldown_queries,
            };
            h.tripped_this_query = true;
            return true;
        }
        false
    }

    /// Records a detected transfer corruption on `device` (checksum
    /// mismatch). Corruptions do not trip a breaker on their own — the
    /// retransmit/re-placement protocol owns recovery — but they are
    /// remembered for reports and snapshots.
    pub fn record_corruption(&mut self, device: DeviceId) {
        if !self.policy.enabled {
            return;
        }
        self.entry(device).corruptions += 1;
    }

    /// Expected extra latency of placing work on `device`, in modeled
    /// nanoseconds: the smoothed excess duration of its watchdog overruns.
    /// Zero for devices that never overran. Added to
    /// [`Self::retry_penalty_ns`] when ranking placement candidates, so
    /// chronically slow devices lose ties.
    pub fn latency_penalty_ns(&self, device: DeviceId) -> f64 {
        if !self.policy.enabled {
            return 0.0;
        }
        self.devices
            .get(&device)
            .map(|h| {
                if h.latency_overruns > 0 {
                    h.overrun_ns_ewma
                } else {
                    0.0
                }
            })
            .unwrap_or(0.0)
    }

    /// Whether `device` is quarantined (device breaker `Open` or
    /// `SlowOpen`).
    pub fn is_quarantined(&self, device: DeviceId) -> bool {
        self.policy.enabled
            && matches!(
                self.devices.get(&device).map(|h| h.state),
                Some(BreakerState::Open { .. } | BreakerState::SlowOpen { .. })
            )
    }

    /// Whether `device` is `HalfOpen` (only a probe pipeline may use it).
    pub fn is_half_open(&self, device: DeviceId) -> bool {
        self.policy.enabled
            && matches!(
                self.devices.get(&device).map(|h| h.state),
                Some(BreakerState::HalfOpen)
            )
    }

    /// Whether `device` is `HalfOpen` with no probe in flight yet — the next
    /// pipeline placed there may be admitted via [`Self::begin_probe`].
    pub fn probe_candidate(&self, device: DeviceId) -> bool {
        self.policy.enabled
            && self
                .devices
                .get(&device)
                .map(|h| h.state == BreakerState::HalfOpen && !h.probing)
                .unwrap_or(false)
    }

    /// Marks the `HalfOpen` probe on `device` as in flight.
    pub fn begin_probe(&mut self, device: DeviceId) {
        if !self.policy.enabled {
            return;
        }
        let h = self.entry(device);
        if h.state == BreakerState::HalfOpen {
            h.probing = true;
        }
    }

    /// Whether the `(device, kernel)` breaker is `Open` — placement and
    /// fallback must not pick such a candidate for work that runs this
    /// kernel, even though the device itself may be healthy.
    pub fn kernel_known_broken(&self, device: DeviceId, kernel: &str) -> bool {
        self.policy.enabled
            && matches!(
                self.kernels
                    .get(&(device, kernel.to_string()))
                    .map(|k| k.state),
                Some(BreakerState::Open { .. })
            )
    }

    /// The `(device, kernel)` breaker state, if any failures were recorded.
    pub fn kernel_state(&self, device: DeviceId, kernel: &str) -> Option<BreakerState> {
        if !self.policy.enabled {
            return None;
        }
        self.kernels
            .get(&(device, kernel.to_string()))
            .map(|k| k.state)
    }

    /// Whether the `(device, kernel)` breaker is `HalfOpen` with no probe in
    /// flight — the next pipeline resolving this kernel there may be
    /// admitted via [`Self::begin_kernel_probe`].
    pub fn kernel_probe_candidate(&self, device: DeviceId, kernel: &str) -> bool {
        self.policy.enabled
            && self
                .kernels
                .get(&(device, kernel.to_string()))
                .map(|k| k.state == BreakerState::HalfOpen && !k.probing)
                .unwrap_or(false)
    }

    /// Marks the `HalfOpen` probe of `(device, kernel)` as in flight.
    pub fn begin_kernel_probe(&mut self, device: DeviceId, kernel: &str) {
        if !self.policy.enabled {
            return;
        }
        if let Some(k) = self.kernels.get_mut(&(device, kernel.to_string())) {
            if k.state == BreakerState::HalfOpen && !k.probing {
                k.probing = true;
                k.probes += 1;
            }
        }
    }

    /// Kernels currently quarantined (`Open`) on `device`.
    pub fn open_kernels(&self, device: DeviceId) -> u64 {
        if !self.policy.enabled {
            return 0;
        }
        self.kernels
            .iter()
            .filter(|((d, _), k)| *d == device && matches!(k.state, BreakerState::Open { .. }))
            .count() as u64
    }

    /// Expected retry cost of placing work on `device`, in modeled
    /// nanoseconds: observed failure rate × average modeled time wasted per
    /// failure. Zero for devices with no recorded failures.
    pub fn retry_penalty_ns(&self, device: DeviceId) -> f64 {
        if !self.policy.enabled {
            return 0.0;
        }
        let Some(h) = self.devices.get(&device) else {
            return 0.0;
        };
        if h.total_failures == 0 {
            return 0.0;
        }
        // rate * avg_wasted = (failures / attempts) * (wasted / failures)
        // = wasted / attempts, with attempts floored at the failure count so
        // the rate never exceeds 1.
        h.wasted_retry_ns / h.total_attempts.max(h.total_failures) as f64
    }

    /// Ids currently quarantined (device breaker `Open` or `SlowOpen`),
    /// ascending.
    pub fn quarantined_ids(&self) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|(_, h)| {
                matches!(
                    h.state,
                    BreakerState::Open { .. } | BreakerState::SlowOpen { .. }
                )
            })
            .map(|(&id, _)| id)
            .collect()
    }

    /// Ticks the cool-downs at the end of a completed query: `Open` device
    /// and kernel breakers (except those tripped during this query) count
    /// down and half-open at zero; stale probe markers are cleared.
    pub fn on_query_completed(&mut self) {
        if !self.policy.enabled {
            return;
        }
        for h in self.devices.values_mut() {
            h.probing = false;
            if h.tripped_this_query {
                h.tripped_this_query = false;
                continue;
            }
            if let BreakerState::Open { cooldown_left } | BreakerState::SlowOpen { cooldown_left } =
                &mut h.state
            {
                *cooldown_left = cooldown_left.saturating_sub(1);
                if *cooldown_left == 0 {
                    h.state = BreakerState::HalfOpen;
                }
            }
        }
        for k in self.kernels.values_mut() {
            k.probing = false;
            if k.tripped_this_query {
                k.tripped_this_query = false;
                continue;
            }
            if let BreakerState::Open { cooldown_left } = &mut k.state {
                *cooldown_left = cooldown_left.saturating_sub(1);
                if *cooldown_left == 0 {
                    k.state = BreakerState::HalfOpen;
                }
            }
        }
    }

    /// Deterministic per-device snapshot for reports.
    pub fn snapshot(&self) -> BTreeMap<DeviceId, HealthSnapshot> {
        self.devices
            .iter()
            .map(|(&id, h)| {
                (
                    id,
                    HealthSnapshot {
                        state: h.state,
                        kernel_failures: h.total_failures - h.ooms,
                        ooms: h.ooms,
                        retry_penalty_ns: self.retry_penalty_ns(id),
                        open_kernels: self.open_kernels(id),
                        latency_overruns: h.latency_overruns,
                        corruptions: h.corruptions,
                    },
                )
            })
            .collect()
    }

    /// Deterministic per-`(device, kernel)` breaker snapshot.
    pub fn kernel_snapshot(&self) -> BTreeMap<(DeviceId, String), KernelSnapshot> {
        self.kernels
            .iter()
            .map(|((d, name), k)| {
                (
                    (*d, name.clone()),
                    KernelSnapshot {
                        state: k.state,
                        failures: k.total_failures,
                        trips: k.trips,
                        probes: k.probes,
                    },
                )
            })
            .collect()
    }

    // ---- persistence ----------------------------------------------------

    /// Exports the full registry — policy, device breakers, kernel breakers
    /// — as a JSON object string, so health memory survives engine restarts.
    /// In-flight probe markers are transient and not exported.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let p = &self.policy;
        let devices: Vec<String> = self
            .devices
            .iter()
            .map(|(id, h)| {
                let streak: Vec<String> = h
                    .streak_kernels
                    .iter()
                    .map(|k| format!("\"{}\"", esc(k)))
                    .collect();
                format!(
                    "{{\"id\":{},\"state\":\"{}\",\"cooldown_left\":{},\
                     \"consecutive_failures\":{},\"total_failures\":{},\
                     \"total_attempts\":{},\"ooms\":{},\"wasted_retry_ns\":{},\
                     \"latency_overruns\":{},\"slow_ratio_ewma\":{},\
                     \"overrun_ns_ewma\":{},\"corruptions\":{},\
                     \"streak_kernels\":[{}]}}",
                    id.0,
                    h.state.label(),
                    h.state.cooldown(),
                    h.consecutive_failures,
                    h.total_failures,
                    h.total_attempts,
                    h.ooms,
                    h.wasted_retry_ns,
                    h.latency_overruns,
                    h.slow_ratio_ewma,
                    h.overrun_ns_ewma,
                    h.corruptions,
                    streak.join(",")
                )
            })
            .collect();
        let kernels: Vec<String> = self
            .kernels
            .iter()
            .map(|((d, name), k)| {
                format!(
                    "{{\"device\":{},\"kernel\":\"{}\",\"state\":\"{}\",\
                     \"cooldown_left\":{},\"consecutive_failures\":{},\
                     \"total_failures\":{},\"trips\":{},\"probes\":{}}}",
                    d.0,
                    esc(name),
                    k.state.label(),
                    k.state.cooldown(),
                    k.consecutive_failures,
                    k.total_failures,
                    k.trips,
                    k.probes
                )
            })
            .collect();
        format!(
            "{{\"policy\":{{\"failure_threshold\":{},\"cooldown_queries\":{},\
             \"broken_kernel_threshold\":{},\"kernel_cooldown_queries\":{},\
             \"device_trip_min_kernels\":{},\"slow_trip_ratio\":{},\
             \"slow_trip_min_overruns\":{},\"slow_cooldown_queries\":{},\
             \"enabled\":{}}},\
             \"devices\":[{}],\"kernels\":[{}]}}",
            p.failure_threshold,
            p.cooldown_queries,
            p.broken_kernel_threshold,
            p.kernel_cooldown_queries,
            p.device_trip_min_kernels,
            p.slow_trip_ratio,
            p.slow_trip_min_overruns,
            p.slow_cooldown_queries,
            p.enabled,
            devices.join(","),
            kernels.join(",")
        )
    }

    /// Restores a registry exported by [`Self::to_json`]. Probe markers are
    /// reset (import happens between queries). Returns a description of the
    /// first problem on malformed input.
    pub fn from_json(json: &str) -> std::result::Result<Self, String> {
        let value = json::parse(json)?;
        let obj = value.as_object().ok_or("registry: expected object")?;
        let pol = json::get(obj, "policy")?
            .as_object()
            .ok_or("policy: expected object")?;
        let policy = HealthPolicy {
            failure_threshold: json::get(pol, "failure_threshold")?.as_u32()?,
            cooldown_queries: json::get(pol, "cooldown_queries")?.as_u32()?,
            broken_kernel_threshold: json::get(pol, "broken_kernel_threshold")?.as_u64()?,
            kernel_cooldown_queries: json::get(pol, "kernel_cooldown_queries")?.as_u32()?,
            device_trip_min_kernels: json::get(pol, "device_trip_min_kernels")?.as_u32()?,
            slow_trip_ratio: json::get(pol, "slow_trip_ratio")?.as_f64()?,
            slow_trip_min_overruns: json::get(pol, "slow_trip_min_overruns")?.as_u32()?,
            slow_cooldown_queries: json::get(pol, "slow_cooldown_queries")?.as_u32()?,
            enabled: json::get(pol, "enabled")?.as_bool()?,
        };
        let mut reg = DeviceHealthRegistry::new(policy);
        for item in json::get(obj, "devices")?
            .as_array()
            .ok_or("devices: expected array")?
        {
            let d = item.as_object().ok_or("device entry: expected object")?;
            let id = DeviceId(json::get(d, "id")?.as_u32()?);
            let label = json::get(d, "state")?.as_str()?;
            let cooldown = json::get(d, "cooldown_left")?.as_u32()?;
            let state = BreakerState::from_label(&label, cooldown)
                .ok_or_else(|| format!("device {id}: unknown breaker state `{label}`"))?;
            let mut streak = BTreeSet::new();
            for k in json::get(d, "streak_kernels")?
                .as_array()
                .ok_or("streak_kernels: expected array")?
            {
                streak.insert(k.as_str()?);
            }
            reg.devices.insert(
                id,
                DeviceHealth {
                    state,
                    probing: false,
                    tripped_this_query: false,
                    consecutive_failures: json::get(d, "consecutive_failures")?.as_u32()?,
                    streak_kernels: streak,
                    total_failures: json::get(d, "total_failures")?.as_u64()?,
                    total_attempts: json::get(d, "total_attempts")?.as_u64()?,
                    ooms: json::get(d, "ooms")?.as_u64()?,
                    wasted_retry_ns: json::get(d, "wasted_retry_ns")?.as_f64()?,
                    latency_overruns: json::get(d, "latency_overruns")?.as_u32()?,
                    slow_ratio_ewma: json::get(d, "slow_ratio_ewma")?.as_f64()?,
                    overrun_ns_ewma: json::get(d, "overrun_ns_ewma")?.as_f64()?,
                    corruptions: json::get(d, "corruptions")?.as_u64()?,
                },
            );
        }
        for item in json::get(obj, "kernels")?
            .as_array()
            .ok_or("kernels: expected array")?
        {
            let k = item.as_object().ok_or("kernel entry: expected object")?;
            let device = DeviceId(json::get(k, "device")?.as_u32()?);
            let name = json::get(k, "kernel")?.as_str()?;
            let label = json::get(k, "state")?.as_str()?;
            let cooldown = json::get(k, "cooldown_left")?.as_u32()?;
            let state = BreakerState::from_label(&label, cooldown)
                .ok_or_else(|| format!("kernel `{name}`: unknown breaker state `{label}`"))?;
            reg.kernels.insert(
                (device, name),
                KernelHealth {
                    state,
                    probing: false,
                    tripped_this_query: false,
                    consecutive_failures: json::get(k, "consecutive_failures")?.as_u64()?,
                    total_failures: json::get(k, "total_failures")?.as_u64()?,
                    trips: json::get(k, "trips")?.as_u64()?,
                    probes: json::get(k, "probes")?.as_u64()?,
                },
            );
        }
        Ok(reg)
    }
}

/// A minimal JSON reader for [`DeviceHealthRegistry::from_json`] — the repo
/// is std-only, so persistence cannot lean on a format crate. Supports
/// objects, arrays, strings (`\"`/`\\` escapes), numbers and booleans; that
/// is exactly the grammar `to_json` emits.
mod json {
    pub enum Value {
        Object(Vec<(String, Value)>),
        Array(Vec<Value>),
        Str(String),
        Num(f64),
        Bool(bool),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Result<String, String> {
            match self {
                Value::Str(s) => Ok(s.clone()),
                _ => Err("expected string".into()),
            }
        }
        pub fn as_f64(&self) -> Result<f64, String> {
            match self {
                Value::Num(n) if n.is_finite() => Ok(*n),
                Value::Num(_) => Err("expected finite number".into()),
                _ => Err("expected number".into()),
            }
        }
        pub fn as_u64(&self) -> Result<u64, String> {
            match self {
                Value::Num(n)
                    if n.is_finite() && *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 =>
                {
                    Ok(*n as u64)
                }
                _ => Err("expected non-negative integer".into()),
            }
        }
        pub fn as_u32(&self) -> Result<u32, String> {
            u32::try_from(self.as_u64()?).map_err(|_| "integer out of range for u32".to_string())
        }
        pub fn as_bool(&self) -> Result<bool, String> {
            match self {
                Value::Bool(b) => Ok(*b),
                _ => Err("expected boolean".into()),
            }
        }
    }

    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key `{key}`"))
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| "unexpected end of input".to_string())
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek()? == b {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' | b'f' => self.boolean(),
                _ => self.number(),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            if self.peek()? == b'}' {
                self.pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                fields.push((key, self.value()?));
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    other => {
                        return Err(format!(
                            "expected `,` or `}}`, found `{}` at byte {}",
                            other as char, self.pos
                        ))
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    other => {
                        return Err(format!(
                            "expected `,` or `]`, found `{}` at byte {}",
                            other as char, self.pos
                        ))
                    }
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        match self.bytes.get(self.pos + 1) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 2;
                    }
                    Some(&b) => {
                        // Multi-byte UTF-8 sequences pass through byte-wise;
                        // the input came from a &str so they are valid.
                        out.push(b as char);
                        if b < 0x80 {
                            self.pos += 1;
                        } else {
                            let start = self.pos;
                            let s = &self.bytes[start..];
                            let len = std::str::from_utf8(s)
                                .map(|t| t.chars().next().map(|c| c.len_utf8()).unwrap_or(1))
                                .unwrap_or(1);
                            out.pop();
                            out.push_str(
                                std::str::from_utf8(&self.bytes[start..start + len])
                                    .map_err(|_| "invalid utf-8".to_string())?,
                            );
                            self.pos += len;
                        }
                    }
                    None => return Err("unterminated string".into()),
                }
            }
        }

        fn boolean(&mut self) -> Result<Value, String> {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(b"true") {
                self.pos += 4;
                Ok(Value::Bool(true))
            } else if self.bytes[self.pos..].starts_with(b"false") {
                self.pos += 5;
                Ok(Value::Bool(false))
            } else {
                Err(format!("expected boolean at byte {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            self.skip_ws();
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> DeviceHealthRegistry {
        DeviceHealthRegistry::new(HealthPolicy {
            failure_threshold: 2,
            cooldown_queries: 2,
            broken_kernel_threshold: 2,
            kernel_cooldown_queries: 2,
            device_trip_min_kernels: 2,
            ..HealthPolicy::default()
        })
    }

    const D: DeviceId = DeviceId(0);

    #[test]
    fn forget_device_drops_every_record_including_json() {
        let mut r = reg();
        r.record_attempt(D);
        r.record_kernel_failure(D, "agg_block", 100.0);
        r.record_kernel_failure(D, "agg_block", 100.0);
        let other = DeviceId(1);
        r.record_attempt(other);
        assert!(r.to_json().contains("\"id\":0"), "device 0 is reported");
        r.forget_device(D);
        let json = r.to_json();
        assert!(
            !json.contains("\"id\":0"),
            "ghost device must vanish from the export: {json}"
        );
        assert!(
            !json.contains("\"device\":0"),
            "ghost kernel breakers must vanish too: {json}"
        );
        assert!(json.contains("\"id\":1"), "other devices are kept");
        assert!(!r.kernel_known_broken(D, "agg_block"));
        assert_eq!(r.retry_penalty_ns(D), 0.0);
    }

    #[test]
    fn admit_half_open_enters_the_probe_ramp() {
        let mut r = reg();
        r.admit_half_open(D);
        assert!(r.is_half_open(D));
        assert!(r.probe_candidate(D));
        r.begin_probe(D);
        assert!(!r.probe_candidate(D), "one probe in flight at a time");
        assert!(r.record_success(D), "probe success closes the breaker");
        assert!(!r.is_half_open(D));
        assert!(!r.is_quarantined(D));
    }

    #[test]
    fn single_kernel_trips_kernel_breaker_not_device() {
        let mut r = reg();
        r.record_attempt(D);
        let v = r.record_kernel_failure(D, "agg_block", 100.0);
        assert!(!v.kernel_tripped && !v.device_tripped);
        let v = r.record_kernel_failure(D, "agg_block", 100.0);
        assert!(v.kernel_tripped, "kernel breaker should trip at threshold");
        assert!(!v.device_tripped, "one kernel must not quarantine device");
        assert!(r.kernel_known_broken(D, "agg_block"));
        assert!(!r.is_quarantined(D), "device stays healthy");
        assert_eq!(r.open_kernels(D), 1);
        assert!(r.quarantined_ids().is_empty());
    }

    #[test]
    fn multi_kernel_streak_trips_device_breaker() {
        let mut r = reg();
        let v = r.record_kernel_failure(D, "map", 10.0);
        assert!(!v.device_tripped);
        let v = r.record_kernel_failure(D, "agg_block", 10.0);
        assert!(
            v.device_tripped,
            "streak of 2 across 2 distinct kernels trips the device"
        );
        assert!(r.is_quarantined(D));
        assert_eq!(r.quarantined_ids(), vec![D]);
    }

    #[test]
    fn success_resets_consecutive_and_streak() {
        let mut r = reg();
        r.record_kernel_failure(D, "map", 1.0);
        r.record_success(D);
        let v = r.record_kernel_failure(D, "agg_block", 1.0);
        assert!(!v.device_tripped, "streak was reset by the success");
        assert!(!r.is_quarantined(D));
    }

    #[test]
    fn kernel_cooldown_probe_restores() {
        let mut r = reg();
        r.record_kernel_failure(D, "k", 1.0);
        r.record_kernel_failure(D, "k", 1.0); // kernel breaker trips, cooldown 2
        assert!(r.kernel_known_broken(D, "k"));
        r.on_query_completed(); // tripped this query: no decrement
        assert!(r.kernel_known_broken(D, "k"));
        r.on_query_completed(); // 2 -> 1
        assert!(r.kernel_known_broken(D, "k"));
        r.on_query_completed(); // 1 -> 0 -> HalfOpen
        assert!(!r.kernel_known_broken(D, "k"));
        assert!(r.kernel_probe_candidate(D, "k"));
        r.begin_kernel_probe(D, "k");
        assert!(!r.kernel_probe_candidate(D, "k"), "one probe per query");
        assert!(r.record_kernel_success(D, "k"), "probe success restores");
        assert_eq!(r.kernel_state(D, "k"), Some(BreakerState::Closed));
        let snap = &r.kernel_snapshot()[&(D, "k".to_string())];
        assert_eq!(snap.trips, 1);
        assert_eq!(snap.probes, 1);
        assert_eq!(snap.failures, 0, "probe success clears failure memory");
        assert_eq!(
            r.retry_penalty_ns(D),
            0.0,
            "last bad kernel recovering clears the device's wasted memory"
        );
    }

    #[test]
    fn failed_kernel_probe_reopens() {
        let mut r = reg();
        r.record_kernel_failure(D, "k", 1.0);
        r.record_kernel_failure(D, "k", 1.0);
        r.on_query_completed();
        r.on_query_completed();
        r.on_query_completed();
        r.begin_kernel_probe(D, "k");
        let v = r.record_kernel_failure(D, "k", 1.0);
        assert!(v.kernel_tripped, "failed kernel probe re-trips");
        assert!(r.kernel_known_broken(D, "k"));
        assert_eq!(r.kernel_snapshot()[&(D, "k".to_string())].trips, 2);
    }

    #[test]
    fn device_cooldown_then_half_open_then_probe_restores() {
        let mut r = reg();
        r.record_kernel_failure(D, "a", 1.0);
        r.record_kernel_failure(D, "b", 1.0); // device trips, cooldown 2
        r.on_query_completed(); // tripped this query: no decrement
        assert!(r.is_quarantined(D));
        r.on_query_completed(); // 2 -> 1
        assert!(r.is_quarantined(D));
        r.on_query_completed(); // 1 -> 0 -> HalfOpen
        assert!(!r.is_quarantined(D));
        assert!(r.probe_candidate(D));
        r.begin_probe(D);
        assert!(!r.probe_candidate(D), "one probe per query");
        assert!(r.record_success(D), "probe success restores Closed");
        assert!(!r.is_half_open(D));
        assert_eq!(r.retry_penalty_ns(D), 0.0, "failure memory cleared");
        assert!(!r.kernel_known_broken(D, "a"), "kernel memory cleared too");
    }

    #[test]
    fn failed_device_probe_reopens() {
        let mut r = reg();
        r.record_kernel_failure(D, "a", 1.0);
        r.record_kernel_failure(D, "b", 1.0);
        r.on_query_completed();
        r.on_query_completed();
        r.on_query_completed();
        r.begin_probe(D);
        let v = r.record_kernel_failure(D, "a", 1.0);
        assert!(v.device_tripped, "failed probe re-trips");
        assert!(r.is_quarantined(D));
    }

    #[test]
    fn oom_does_not_trip_closed_breaker_but_fails_probe() {
        let mut r = reg();
        for _ in 0..10 {
            assert!(!r.record_oom(D, 50.0));
        }
        assert!(!r.is_quarantined(D));
        assert!(r.retry_penalty_ns(D) > 0.0, "OOM pressure raises penalty");
        // Trip via kernel failures, cool down, then fail the probe with OOM.
        r.record_kernel_failure(D, "a", 1.0);
        r.record_kernel_failure(D, "b", 1.0);
        r.on_query_completed();
        r.on_query_completed();
        r.on_query_completed();
        r.begin_probe(D);
        assert!(r.record_oom(D, 1.0));
        assert!(r.is_quarantined(D));
    }

    #[test]
    fn known_broken_kernel_threshold() {
        let mut r = reg();
        r.record_kernel_failure(D, "hash_build", 1.0);
        assert!(!r.kernel_known_broken(D, "hash_build"));
        r.record_kernel_failure(D, "hash_build", 1.0);
        assert!(r.kernel_known_broken(D, "hash_build"));
        assert!(!r.kernel_known_broken(D, "hash_probe"));
        assert!(!r.kernel_known_broken(DeviceId(1), "hash_build"));
    }

    #[test]
    fn retry_penalty_is_rate_times_cost() {
        let mut r = reg();
        // 4 attempts, 1 failure wasting 1000 ns: rate 0.25, avg 1000.
        for _ in 0..4 {
            r.record_attempt(D);
        }
        r.record_kernel_failure(D, "k", 1000.0);
        assert!((r.retry_penalty_ns(D) - 250.0).abs() < 1e-9);
        assert_eq!(r.retry_penalty_ns(DeviceId(7)), 0.0);
    }

    #[test]
    fn disabled_policy_records_nothing() {
        let mut r = DeviceHealthRegistry::new(HealthPolicy {
            enabled: false,
            ..HealthPolicy::default()
        });
        r.record_attempt(D);
        r.record_kernel_failure(D, "k", 1.0);
        r.record_kernel_failure(D, "k", 1.0);
        assert!(!r.is_quarantined(D));
        assert!(!r.kernel_known_broken(D, "k"));
        assert_eq!(r.retry_penalty_ns(D), 0.0);
        assert!(r.snapshot().is_empty());
        assert!(r.kernel_snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_deterministic_and_split() {
        let mut r = reg();
        r.record_attempt(D);
        r.record_kernel_failure(D, "k", 10.0);
        r.record_oom(D, 5.0);
        let snap = r.snapshot();
        let s = &snap[&D];
        assert_eq!(s.kernel_failures, 1);
        assert_eq!(s.ooms, 1);
        assert_eq!(s.state, BreakerState::Closed);
        assert_eq!(s.open_kernels, 0);
        assert!(s.retry_penalty_ns > 0.0);
        assert_eq!(BreakerState::Closed.label(), "closed");
        assert_eq!(BreakerState::Open { cooldown_left: 1 }.label(), "open");
        assert_eq!(BreakerState::HalfOpen.label(), "half-open");
    }

    #[test]
    fn json_round_trip_preserves_state_and_behavior() {
        let mut r = DeviceHealthRegistry::new(HealthPolicy {
            cooldown_queries: 3,
            ..HealthPolicy::default()
        });
        // Mixed state: an open kernel breaker on D, a quarantined device 1,
        // OOM pressure, attempt counts and a mid-streak kernel.
        r.record_attempt(D);
        r.record_attempt(D);
        r.record_kernel_failure(D, "agg_block", 40.0);
        r.record_kernel_failure(D, "agg_block", 60.0);
        r.record_oom(D, 25.0);
        r.record_kernel_failure(DeviceId(1), "map \"odd\"", 10.0);
        r.record_kernel_failure(DeviceId(1), "sort", 10.0);
        r.record_kernel_failure(DeviceId(2), "hash_build", 5.0);

        let json = r.to_json();
        let restored = DeviceHealthRegistry::from_json(&json).expect("round trip");
        assert_eq!(restored.policy(), r.policy());
        assert_eq!(restored.snapshot(), r.snapshot());
        assert_eq!(restored.kernel_snapshot(), r.kernel_snapshot());
        assert_eq!(restored.to_json(), json, "export is a fixed point");
        // Behavior carries over: quarantine and known-broken checks agree.
        assert!(restored.kernel_known_broken(D, "agg_block"));
        assert!(restored.is_quarantined(DeviceId(1)));
        assert!((restored.retry_penalty_ns(D) - r.retry_penalty_ns(D)).abs() < 1e-12);
        // And the restored registry keeps ticking: half-open after cooldown.
        let mut restored = restored;
        for _ in 0..4 {
            restored.on_query_completed();
        }
        assert!(!restored.is_quarantined(DeviceId(1)));
        assert!(restored.is_half_open(DeviceId(1)));
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(DeviceHealthRegistry::from_json("").is_err());
        assert!(DeviceHealthRegistry::from_json("{}").is_err());
        assert!(DeviceHealthRegistry::from_json("{\"policy\":7}").is_err());
        assert!(DeviceHealthRegistry::from_json("not json at all").is_err());
        let truncated = reg().to_json();
        let truncated = &truncated[..truncated.len() - 2];
        assert!(DeviceHealthRegistry::from_json(truncated).is_err());
    }

    #[test]
    fn slow_breaker_trips_cools_down_and_probe_restores() {
        let mut r = reg(); // slow_trip_ratio 4.0, min overruns 3, cooldown 2
        assert!(!r.record_latency_overrun(D, 100.0, 900.0));
        assert!(!r.record_latency_overrun(D, 100.0, 900.0));
        assert_eq!(r.latency_penalty_ns(D), 800.0, "EWMA of a constant excess");
        assert!(!r.is_quarantined(D), "two overruns are not chronic yet");
        assert!(
            r.record_latency_overrun(D, 100.0, 900.0),
            "third overrun with 9x smoothed ratio trips SlowOpen"
        );
        assert!(r.is_quarantined(D));
        assert_eq!(r.quarantined_ids(), vec![D]);
        assert_eq!(r.snapshot()[&D].state.label(), "slow-open");
        assert_eq!(r.snapshot()[&D].latency_overruns, 3);
        r.on_query_completed(); // tripped this query: no decrement
        assert!(r.is_quarantined(D));
        r.on_query_completed(); // 2 -> 1
        r.on_query_completed(); // 1 -> 0 -> HalfOpen
        assert!(!r.is_quarantined(D));
        assert!(r.probe_candidate(D));
        r.begin_probe(D);
        assert!(r.record_success(D), "probe success restores Closed");
        assert_eq!(r.latency_penalty_ns(D), 0.0, "latency memory cleared");
        assert_eq!(r.snapshot()[&D].latency_overruns, 0);
    }

    #[test]
    fn mild_overruns_never_trip() {
        let mut r = reg();
        for _ in 0..20 {
            // 2x over budget: slow, but under the 4x chronic threshold.
            assert!(!r.record_latency_overrun(D, 100.0, 200.0));
        }
        assert!(!r.is_quarantined(D));
        assert!(
            r.latency_penalty_ns(D) > 0.0,
            "still penalized in placement"
        );
    }

    #[test]
    fn corruption_is_counted_and_cleared_by_probe_success() {
        let mut r = reg();
        r.record_corruption(D);
        r.record_corruption(D);
        assert_eq!(r.snapshot()[&D].corruptions, 2);
        assert!(!r.is_quarantined(D), "corruption alone never quarantines");
        // Corruption memory survives the JSON round trip.
        let restored = DeviceHealthRegistry::from_json(&r.to_json()).unwrap();
        assert_eq!(restored.snapshot()[&D].corruptions, 2);
    }

    #[test]
    fn slow_open_state_round_trips_through_json() {
        let mut r = reg();
        for _ in 0..3 {
            r.record_latency_overrun(D, 10.0, 200.0);
        }
        assert!(r.is_quarantined(D));
        let restored = DeviceHealthRegistry::from_json(&r.to_json()).unwrap();
        assert_eq!(restored.snapshot(), r.snapshot());
        assert!(restored.is_quarantined(D));
        assert_eq!(restored.to_json(), r.to_json(), "export is a fixed point");
        assert!((restored.latency_penalty_ns(D) - r.latency_penalty_ns(D)).abs() < 1e-9);
    }

    #[test]
    fn from_json_survives_adversarial_inputs() {
        let valid = {
            let mut r = reg();
            r.record_attempt(D);
            r.record_kernel_failure(D, "k", 10.0);
            r.to_json()
        };
        // Every prefix of a valid export errs cleanly instead of panicking.
        for cut in 0..valid.len() {
            assert!(
                DeviceHealthRegistry::from_json(&valid[..cut]).is_err(),
                "truncation at byte {cut} must be an error"
            );
        }
        let adversarial: &[&str] = &[
            // Garbage.
            "\u{0}\u{0}\u{0}",
            "][",
            "{{{{",
            "null",
            "{\"policy\":null}",
            // Wrong types everywhere.
            "{\"policy\":[],\"devices\":{},\"kernels\":7}",
            "{\"policy\":{\"failure_threshold\":\"two\"},\"devices\":[],\"kernels\":[]}",
            "{\"policy\":{\"failure_threshold\":true},\"devices\":[],\"kernels\":[]}",
            // Negative, fractional, overflowing and non-finite numbers where
            // unsigned integers are required.
            "{\"policy\":{\"failure_threshold\":-2},\"devices\":[],\"kernels\":[]}",
            "{\"policy\":{\"failure_threshold\":2.5},\"devices\":[],\"kernels\":[]}",
            "{\"policy\":{\"failure_threshold\":5000000000},\"devices\":[],\"kernels\":[]}",
            "{\"policy\":{\"failure_threshold\":1e999},\"devices\":[],\"kernels\":[]}",
            // Unknown breaker state.
            "{\"policy\":{\"failure_threshold\":1,\"cooldown_queries\":1,\
             \"broken_kernel_threshold\":1,\"kernel_cooldown_queries\":1,\
             \"device_trip_min_kernels\":1,\"slow_trip_ratio\":4,\
             \"slow_trip_min_overruns\":3,\"slow_cooldown_queries\":2,\
             \"enabled\":true},\"devices\":[{\"id\":0,\"state\":\"ajar\",\
             \"cooldown_left\":0}],\"kernels\":[]}",
            // Structural damage.
            "{\"policy\"",
            "{\"policy\":{\"failure_threshold\":}}",
            "{\"policy\":{,}}",
            "[1,2,",
            "\"unterminated",
            "{\"a\":1}trailing",
        ];
        for (i, input) in adversarial.iter().enumerate() {
            assert!(
                DeviceHealthRegistry::from_json(input).is_err(),
                "adversarial input #{i} must be rejected: {input:?}"
            );
        }
        // Duplicated keys are tolerated deterministically (first wins) —
        // the grammar our own exporter emits never duplicates.
        let dup = valid.replacen(
            "\"failure_threshold\":2",
            "\"failure_threshold\":2,\"failure_threshold\":9",
            1,
        );
        let parsed = DeviceHealthRegistry::from_json(&dup).expect("duplicate keys parse");
        assert_eq!(parsed.policy().failure_threshold, 2, "first key wins");
        // And the happy path still works.
        assert!(DeviceHealthRegistry::from_json(&valid).is_ok());
    }
}
