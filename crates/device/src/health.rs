//! Cross-query device health tracking with per-device circuit breakers.
//!
//! PR 1 gave the executor *within-run* recovery (chunk backoff, pipeline
//! fallback), but every query still started blind: a device that just burned
//! four retries on a kernel got picked again by the next query. The
//! [`DeviceHealthRegistry`] is the missing feedback channel — it outlives a
//! single query, records per-`(DeviceId, kernel)` failures and OOM pressure,
//! and drives three decisions in the runtime:
//!
//! * **Quarantine.** Each device carries a circuit breaker
//!   ([`BreakerState`]): `Closed → Open` after
//!   [`HealthPolicy::failure_threshold`] consecutive kernel failures.
//!   Quarantined (`Open`) devices are skipped by initial placement, by the
//!   hub router's source choice, and by `repoint_pipeline`.
//! * **Probing.** After [`HealthPolicy::cooldown_queries`] completed queries
//!   the breaker moves `Open → HalfOpen`; exactly one pipeline per query is
//!   admitted as a probe. A successful probe restores `Closed` (and clears
//!   the device's failure memory — it is deemed repaired); a failed probe
//!   re-opens the breaker for another cool-down.
//! * **Recovery-aware placement cost.** [`DeviceHealthRegistry::retry_penalty_ns`]
//!   is the expected retry cost of placing on a device — its observed
//!   failure rate times the average modeled time a failed attempt wasted.
//!   Fed into [`crate::cost::CostModel::placement_cost_ns`], it makes flaky
//!   or memory-tight devices lose placement ties instead of winning them.
//!
//! Everything here is deterministic: state transitions depend only on the
//! sequence of recorded events, and [`DeviceHealthRegistry::snapshot`]
//! returns a `BTreeMap` so exported reports are byte-stable.

use crate::device::DeviceId;
use std::collections::BTreeMap;

/// Tunables of the circuit breaker and placement penalty.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthPolicy {
    /// Consecutive kernel failures (without an intervening success) that
    /// trip a device's breaker `Closed → Open`.
    pub failure_threshold: u32,
    /// Completed queries a tripped breaker stays `Open` before a `HalfOpen`
    /// probe is admitted. The query that trips the breaker does not count.
    pub cooldown_queries: u32,
    /// Recorded failures of one kernel on one device before that kernel
    /// counts as *known broken* there (fallback placement skips such
    /// candidates).
    pub broken_kernel_threshold: u64,
    /// Master switch: when `false` the registry records nothing and reports
    /// every device healthy (useful for A/B benchmarking the subsystem).
    pub enabled: bool,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            failure_threshold: 2,
            cooldown_queries: 2,
            broken_kernel_threshold: 2,
            enabled: true,
        }
    }
}

/// Circuit-breaker state of one device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: placement uses the device normally.
    Closed,
    /// Quarantined: skipped by placement, routing and fallback until the
    /// cool-down elapses.
    Open {
        /// Completed queries remaining before the breaker half-opens.
        cooldown_left: u32,
    },
    /// Cooling down finished: one probe pipeline per query is admitted to
    /// test whether the device recovered.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label for reports (`"closed"`, `"open"`,
    /// `"half-open"`).
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Per-device health record.
#[derive(Clone, Debug)]
struct DeviceHealth {
    state: BreakerState,
    /// A `HalfOpen` probe pipeline is in flight this query.
    probing: bool,
    /// The breaker tripped during the current query (its cool-down only
    /// starts counting from the *next* completed query).
    tripped_this_query: bool,
    consecutive_failures: u32,
    total_failures: u64,
    total_attempts: u64,
    ooms: u64,
    wasted_retry_ns: f64,
}

impl Default for DeviceHealth {
    fn default() -> Self {
        DeviceHealth {
            state: BreakerState::Closed,
            probing: false,
            tripped_this_query: false,
            consecutive_failures: 0,
            total_failures: 0,
            total_attempts: 0,
            ooms: 0,
            wasted_retry_ns: 0.0,
        }
    }
}

/// Deterministic export of one device's health (for `ExecutionStats`).
#[derive(Clone, Debug, PartialEq)]
pub struct HealthSnapshot {
    /// Breaker state at snapshot time.
    pub state: BreakerState,
    /// Kernel failures recorded (lifetime, cleared by a successful probe).
    pub kernel_failures: u64,
    /// Out-of-memory events recorded (lifetime, cleared by a successful
    /// probe).
    pub ooms: u64,
    /// Current expected-retry placement penalty in modeled nanoseconds.
    pub retry_penalty_ns: f64,
}

/// Cross-query device health registry (the tentpole of the graceful-
/// degradation subsystem). Owned by the executor; shared across queries.
#[derive(Clone, Debug, Default)]
pub struct DeviceHealthRegistry {
    policy: HealthPolicy,
    devices: BTreeMap<DeviceId, DeviceHealth>,
    /// Failure counts per `(device, kernel name)`.
    kernel_failures: BTreeMap<(DeviceId, String), u64>,
}

impl DeviceHealthRegistry {
    /// Creates a registry under the given policy.
    pub fn new(policy: HealthPolicy) -> Self {
        DeviceHealthRegistry {
            policy,
            ..Default::default()
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Replaces the policy (existing state is kept).
    pub fn set_policy(&mut self, policy: HealthPolicy) {
        self.policy = policy;
    }

    /// Forgets all recorded health (e.g. between experiments).
    pub fn reset(&mut self) {
        self.devices.clear();
        self.kernel_failures.clear();
    }

    fn entry(&mut self, device: DeviceId) -> &mut DeviceHealth {
        self.devices.entry(device).or_default()
    }

    /// Records that a pipeline attempt is about to run on `device` (the
    /// denominator of the failure rate).
    pub fn record_attempt(&mut self, device: DeviceId) {
        if !self.policy.enabled {
            return;
        }
        self.entry(device).total_attempts += 1;
    }

    /// Records a kernel execution failure of `kernel` on `device` that
    /// wasted `wasted_ns` of modeled time. Returns `true` when this failure
    /// tripped the breaker (`Closed → Open`, or a failed `HalfOpen` probe
    /// re-opening it).
    pub fn record_kernel_failure(
        &mut self,
        device: DeviceId,
        kernel: &str,
        wasted_ns: f64,
    ) -> bool {
        if !self.policy.enabled {
            return false;
        }
        *self
            .kernel_failures
            .entry((device, kernel.to_string()))
            .or_insert(0) += 1;
        let threshold = self.policy.failure_threshold;
        let cooldown = self.policy.cooldown_queries;
        let h = self.entry(device);
        h.total_failures += 1;
        h.consecutive_failures += 1;
        h.wasted_retry_ns += wasted_ns.max(0.0);
        Self::maybe_trip(h, threshold, cooldown)
    }

    /// Records an out-of-memory event on `device` that wasted `wasted_ns`
    /// of modeled time. OOM pressure feeds the placement penalty but does
    /// not trip a `Closed` breaker (chunk backoff owns that failure class);
    /// it *does* fail an in-flight `HalfOpen` probe. Returns `true` when the
    /// probe was failed (breaker re-opened).
    pub fn record_oom(&mut self, device: DeviceId, wasted_ns: f64) -> bool {
        if !self.policy.enabled {
            return false;
        }
        let cooldown = self.policy.cooldown_queries;
        let h = self.entry(device);
        h.ooms += 1;
        h.total_failures += 1;
        h.wasted_retry_ns += wasted_ns.max(0.0);
        if h.state == BreakerState::HalfOpen && h.probing {
            h.state = BreakerState::Open {
                cooldown_left: cooldown,
            };
            h.probing = false;
            h.tripped_this_query = true;
            return true;
        }
        false
    }

    fn maybe_trip(h: &mut DeviceHealth, threshold: u32, cooldown: u32) -> bool {
        match h.state {
            BreakerState::HalfOpen if h.probing => {
                h.state = BreakerState::Open {
                    cooldown_left: cooldown,
                };
                h.probing = false;
                h.tripped_this_query = true;
                true
            }
            BreakerState::Closed if h.consecutive_failures >= threshold.max(1) => {
                h.state = BreakerState::Open {
                    cooldown_left: cooldown,
                };
                h.tripped_this_query = true;
                true
            }
            _ => false,
        }
    }

    /// Records a successful pipeline execution on `device`. Returns `true`
    /// when this success completed a `HalfOpen` probe (breaker restored to
    /// `Closed` and the device's failure memory cleared).
    pub fn record_success(&mut self, device: DeviceId) -> bool {
        if !self.policy.enabled {
            return false;
        }
        let h = self.entry(device);
        h.consecutive_failures = 0;
        if h.state == BreakerState::HalfOpen && h.probing {
            h.state = BreakerState::Closed;
            h.probing = false;
            h.total_failures = 0;
            h.ooms = 0;
            h.wasted_retry_ns = 0.0;
            self.kernel_failures.retain(|(d, _), _| *d != device);
            return true;
        }
        false
    }

    /// Whether `device` is quarantined (breaker `Open`).
    pub fn is_quarantined(&self, device: DeviceId) -> bool {
        self.policy.enabled
            && matches!(
                self.devices.get(&device).map(|h| h.state),
                Some(BreakerState::Open { .. })
            )
    }

    /// Whether `device` is `HalfOpen` (only a probe pipeline may use it).
    pub fn is_half_open(&self, device: DeviceId) -> bool {
        self.policy.enabled
            && matches!(
                self.devices.get(&device).map(|h| h.state),
                Some(BreakerState::HalfOpen)
            )
    }

    /// Whether `device` is `HalfOpen` with no probe in flight yet — the next
    /// pipeline placed there may be admitted via [`Self::begin_probe`].
    pub fn probe_candidate(&self, device: DeviceId) -> bool {
        self.policy.enabled
            && self
                .devices
                .get(&device)
                .map(|h| h.state == BreakerState::HalfOpen && !h.probing)
                .unwrap_or(false)
    }

    /// Marks the `HalfOpen` probe on `device` as in flight.
    pub fn begin_probe(&mut self, device: DeviceId) {
        if !self.policy.enabled {
            return;
        }
        let h = self.entry(device);
        if h.state == BreakerState::HalfOpen {
            h.probing = true;
        }
    }

    /// Whether `kernel` has failed on `device` at least
    /// [`HealthPolicy::broken_kernel_threshold`] times — fallback placement
    /// must not pick such a candidate for work that runs this kernel.
    pub fn kernel_known_broken(&self, device: DeviceId, kernel: &str) -> bool {
        self.policy.enabled
            && self
                .kernel_failures
                .get(&(device, kernel.to_string()))
                .map(|&n| n >= self.policy.broken_kernel_threshold.max(1))
                .unwrap_or(false)
    }

    /// Expected retry cost of placing work on `device`, in modeled
    /// nanoseconds: observed failure rate × average modeled time wasted per
    /// failure. Zero for devices with no recorded failures.
    pub fn retry_penalty_ns(&self, device: DeviceId) -> f64 {
        if !self.policy.enabled {
            return 0.0;
        }
        let Some(h) = self.devices.get(&device) else {
            return 0.0;
        };
        if h.total_failures == 0 {
            return 0.0;
        }
        // rate * avg_wasted = (failures / attempts) * (wasted / failures)
        // = wasted / attempts, with attempts floored at the failure count so
        // the rate never exceeds 1.
        h.wasted_retry_ns / h.total_attempts.max(h.total_failures) as f64
    }

    /// Ids currently quarantined (breaker `Open`), ascending.
    pub fn quarantined_ids(&self) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|(_, h)| matches!(h.state, BreakerState::Open { .. }))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Ticks the cool-down at the end of a completed query: `Open` breakers
    /// (except those tripped during this query) count down and half-open at
    /// zero; stale probe markers are cleared.
    pub fn on_query_completed(&mut self) {
        if !self.policy.enabled {
            return;
        }
        for h in self.devices.values_mut() {
            h.probing = false;
            if h.tripped_this_query {
                h.tripped_this_query = false;
                continue;
            }
            if let BreakerState::Open { cooldown_left } = &mut h.state {
                *cooldown_left = cooldown_left.saturating_sub(1);
                if *cooldown_left == 0 {
                    h.state = BreakerState::HalfOpen;
                }
            }
        }
    }

    /// Deterministic per-device snapshot for reports.
    pub fn snapshot(&self) -> BTreeMap<DeviceId, HealthSnapshot> {
        self.devices
            .iter()
            .map(|(&id, h)| {
                (
                    id,
                    HealthSnapshot {
                        state: h.state,
                        kernel_failures: h.total_failures - h.ooms,
                        ooms: h.ooms,
                        retry_penalty_ns: self.retry_penalty_ns(id),
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> DeviceHealthRegistry {
        DeviceHealthRegistry::new(HealthPolicy {
            failure_threshold: 2,
            cooldown_queries: 2,
            broken_kernel_threshold: 2,
            enabled: true,
        })
    }

    const D: DeviceId = DeviceId(0);

    #[test]
    fn breaker_trips_after_threshold() {
        let mut r = reg();
        r.record_attempt(D);
        assert!(!r.record_kernel_failure(D, "agg_block", 100.0));
        assert!(!r.is_quarantined(D));
        assert!(r.record_kernel_failure(D, "agg_block", 100.0));
        assert!(r.is_quarantined(D));
        assert_eq!(r.quarantined_ids(), vec![D]);
    }

    #[test]
    fn success_resets_consecutive_count() {
        let mut r = reg();
        r.record_kernel_failure(D, "map", 1.0);
        r.record_success(D);
        assert!(!r.record_kernel_failure(D, "map", 1.0));
        assert!(!r.is_quarantined(D));
    }

    #[test]
    fn cooldown_then_half_open_then_probe_restores() {
        let mut r = reg();
        r.record_kernel_failure(D, "k", 1.0);
        r.record_kernel_failure(D, "k", 1.0); // trips, cooldown 2
        r.on_query_completed(); // tripped this query: no decrement
        assert!(r.is_quarantined(D));
        r.on_query_completed(); // 2 -> 1
        assert!(r.is_quarantined(D));
        r.on_query_completed(); // 1 -> 0 -> HalfOpen
        assert!(!r.is_quarantined(D));
        assert!(r.probe_candidate(D));
        r.begin_probe(D);
        assert!(!r.probe_candidate(D), "one probe per query");
        assert!(r.record_success(D), "probe success restores Closed");
        assert!(!r.is_half_open(D));
        assert_eq!(r.retry_penalty_ns(D), 0.0, "failure memory cleared");
        assert!(!r.kernel_known_broken(D, "k"));
    }

    #[test]
    fn failed_probe_reopens() {
        let mut r = reg();
        r.record_kernel_failure(D, "k", 1.0);
        r.record_kernel_failure(D, "k", 1.0);
        r.on_query_completed();
        r.on_query_completed();
        r.on_query_completed();
        r.begin_probe(D);
        assert!(
            r.record_kernel_failure(D, "k", 1.0),
            "failed probe re-trips"
        );
        assert!(r.is_quarantined(D));
    }

    #[test]
    fn oom_does_not_trip_closed_breaker_but_fails_probe() {
        let mut r = reg();
        for _ in 0..10 {
            assert!(!r.record_oom(D, 50.0));
        }
        assert!(!r.is_quarantined(D));
        assert!(r.retry_penalty_ns(D) > 0.0, "OOM pressure raises penalty");
        // Trip via kernel failures, cool down, then fail the probe with OOM.
        r.record_kernel_failure(D, "k", 1.0);
        r.record_kernel_failure(D, "k", 1.0);
        r.on_query_completed();
        r.on_query_completed();
        r.on_query_completed();
        r.begin_probe(D);
        assert!(r.record_oom(D, 1.0));
        assert!(r.is_quarantined(D));
    }

    #[test]
    fn known_broken_kernel_threshold() {
        let mut r = reg();
        r.record_kernel_failure(D, "hash_build", 1.0);
        assert!(!r.kernel_known_broken(D, "hash_build"));
        r.record_kernel_failure(D, "hash_build", 1.0);
        assert!(r.kernel_known_broken(D, "hash_build"));
        assert!(!r.kernel_known_broken(D, "hash_probe"));
        assert!(!r.kernel_known_broken(DeviceId(1), "hash_build"));
    }

    #[test]
    fn retry_penalty_is_rate_times_cost() {
        let mut r = reg();
        // 4 attempts, 1 failure wasting 1000 ns: rate 0.25, avg 1000.
        for _ in 0..4 {
            r.record_attempt(D);
        }
        r.record_kernel_failure(D, "k", 1000.0);
        assert!((r.retry_penalty_ns(D) - 250.0).abs() < 1e-9);
        assert_eq!(r.retry_penalty_ns(DeviceId(7)), 0.0);
    }

    #[test]
    fn disabled_policy_records_nothing() {
        let mut r = DeviceHealthRegistry::new(HealthPolicy {
            enabled: false,
            ..HealthPolicy::default()
        });
        r.record_attempt(D);
        r.record_kernel_failure(D, "k", 1.0);
        r.record_kernel_failure(D, "k", 1.0);
        assert!(!r.is_quarantined(D));
        assert_eq!(r.retry_penalty_ns(D), 0.0);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_deterministic_and_split() {
        let mut r = reg();
        r.record_attempt(D);
        r.record_kernel_failure(D, "k", 10.0);
        r.record_oom(D, 5.0);
        let snap = r.snapshot();
        let s = &snap[&D];
        assert_eq!(s.kernel_failures, 1);
        assert_eq!(s.ooms, 1);
        assert_eq!(s.state, BreakerState::Closed);
        assert!(s.retry_penalty_ns > 0.0);
        assert_eq!(BreakerState::Closed.label(), "closed");
        assert_eq!(BreakerState::Open { cooldown_left: 1 }.label(), "open");
        assert_eq!(BreakerState::HalfOpen.label(), "half-open");
    }
}
