//! The simulated device driver.
//!
//! [`SimDevice`] implements [`Device`] exactly as a real driver would wrap
//! CUDA or OpenCL — every operation goes through the bounded buffer pool and
//! charges the profile's cost model on the clock. Because the pool is real
//! (allocations fail when full) and kernels really run, the executor above
//! cannot tell it apart from hardware except by wall-clock speed.

use crate::buffer::{Buffer, BufferData, BufferId};
use crate::clock::{Lane, SimClock};
use crate::cost::CostModel;
use crate::device::{Device, DeviceInfo};
use crate::error::{DeviceError, Result};
use crate::fault::{FaultCounters, FaultPlan, FaultState};
use crate::kernel::{ExecuteSpec, KernelFn, KernelSource, KernelStats};
use crate::pool::BufferPool;
use crate::sdk::SdkRepr;
use crate::transform::{TransformKind, TransformTable};
use std::collections::HashMap;

/// A simulated co-processor driver.
pub struct SimDevice {
    info: DeviceInfo,
    cost: CostModel,
    pool: BufferPool,
    clock: SimClock,
    transforms: TransformTable,
    kernels: HashMap<String, KernelFn>,
    supports_compilation: bool,
    initialized: bool,
    faults: FaultState,
    /// Permanent death (hot-unplug / terminal fault): once set, every
    /// data-plane operation fails with [`DeviceError::Gone`] forever —
    /// `reset()` does not revive a dead device.
    dead: bool,
}

impl SimDevice {
    /// Creates a device from its description, cost model and transform table.
    pub fn new(
        info: DeviceInfo,
        cost: CostModel,
        transforms: TransformTable,
        supports_compilation: bool,
    ) -> Self {
        let pool = BufferPool::new(info.memory_capacity, info.pinned_capacity);
        SimDevice {
            info,
            cost,
            pool,
            clock: SimClock::new(),
            transforms,
            kernels: HashMap::new(),
            supports_compilation,
            initialized: false,
            faults: FaultState::default(),
            dead: false,
        }
    }

    /// Whether the device has died permanently (every data-plane operation
    /// now fails with [`DeviceError::Gone`]).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The device's cost model (benches read parameters from here).
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Mutable cost model access (ablation benches tweak parameters).
    pub fn cost_model_mut(&mut self) -> &mut CostModel {
        &mut self.cost
    }

    /// Names of prepared kernels, sorted (for diagnostics).
    pub fn kernel_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.kernels.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Runs the fault plan's allocation check for a device-memory request.
    fn check_alloc(&mut self, bytes: u64) -> Result<()> {
        self.faults
            .on_alloc(bytes, self.pool.used(), self.info.memory_capacity)
    }

    /// Runs the fault plan's allocation check for a pinned-memory request.
    fn check_pinned_alloc(&mut self, bytes: u64) -> Result<()> {
        self.faults
            .on_alloc(bytes, self.pool.pinned_used(), self.info.pinned_capacity)
    }

    fn ensure_init(&self) -> Result<()> {
        if self.initialized {
            Ok(())
        } else {
            Err(DeviceError::NotInitialized)
        }
    }

    /// Kills the device permanently, counting the injected death exactly
    /// once, and returns the terminal error.
    fn die(&mut self) -> DeviceError {
        if !self.dead {
            self.dead = true;
            self.faults.note_death();
        }
        DeviceError::Gone {
            device: self.info.id,
        }
    }

    /// Gate at the top of every data-plane operation: a dead device only
    /// ever answers [`DeviceError::Gone`], and the plan's wall-clock death
    /// trigger fires on the first operation at or past its instant.
    /// Host-side accessors (`info`, `clock`, `pool`, `fault_counters`) stay
    /// usable so write-off accounting can still read the corpse.
    fn ensure_alive(&mut self) -> Result<()> {
        if self.dead {
            return Err(DeviceError::Gone {
                device: self.info.id,
            });
        }
        if self.faults.death_due(self.clock.total_ns()) {
            return Err(self.die());
        }
        Ok(())
    }

    fn native_repr(&self) -> SdkRepr {
        SdkRepr::native_of(self.info.sdk)
    }

    /// Writes `data` into `dst.data` starting at element `offset`.
    ///
    /// `offset == 0` replaces the payload wholesale (the chunk-upload case —
    /// a shorter final chunk must not leave a stale tail); `offset > 0`
    /// splices into the existing payload, growing it if needed. Payload
    /// kinds must match.
    fn overwrite_at(dst: &mut Buffer, id: BufferId, data: BufferData, offset: usize) -> Result<()> {
        if offset == 0 {
            match (&dst.data, &data) {
                (a, b)
                    if std::mem::discriminant(a) == std::mem::discriminant(b) || a.is_empty() =>
                {
                    dst.data = data;
                    return Ok(());
                }
                _ => {
                    return Err(DeviceError::TypeMismatch {
                        id,
                        expected: dst.data.kind(),
                        actual: data.kind(),
                    })
                }
            }
        }
        macro_rules! splice {
            ($dv:expr, $sv:expr) => {{
                let needed = offset + $sv.len();
                if $dv.len() < needed {
                    $dv.resize(needed, Default::default());
                }
                $dv[offset..needed].copy_from_slice(&$sv);
            }};
        }
        match (&mut dst.data, data) {
            (BufferData::I64(d), BufferData::I64(s)) => splice!(d, s),
            (BufferData::F64(d), BufferData::F64(s)) => splice!(d, s),
            (BufferData::U32(d), BufferData::U32(s)) => splice!(d, s),
            (BufferData::BitWords(d), BufferData::BitWords(s)) => splice!(d, s),
            (BufferData::Raw(d), BufferData::Raw(s)) => splice!(d, s),
            // A reserved-but-empty buffer accepts its first payload kind.
            (slot @ BufferData::Raw(_), s) if slot.is_empty() && offset == 0 => *slot = s,
            (d, s) => {
                return Err(DeviceError::TypeMismatch {
                    id,
                    expected: d.kind(),
                    actual: s.kind(),
                })
            }
        }
        Ok(())
    }
}

impl Device for SimDevice {
    fn info(&self) -> &DeviceInfo {
        &self.info
    }

    fn initialize(&mut self) -> Result<()> {
        self.ensure_alive()?;
        self.initialized = true;
        Ok(())
    }

    fn place_data(&mut self, id: BufferId, data: BufferData, offset: usize) -> Result<()> {
        self.ensure_alive()?;
        self.ensure_init()?;
        let fault = self.faults.on_place();
        let mut data = data;
        if fault.corrupt {
            // A bit flipped on the bus: the device stores the damaged
            // payload. The hub's checksum echo is what catches this.
            data.flip_bit(fault.corrupt_at as usize);
        }
        let dilate = self.faults.time_multiplier();
        let bytes = data.byte_len();
        if self.pool.contains(id) {
            let old = self.pool.get(id)?.footprint();
            let pinned = self.pool.get(id)?.pinned;
            {
                let buf = self.pool.get_mut(id)?;
                Self::overwrite_at(buf, id, data, offset)?;
            }
            self.pool.update_accounting(id, old)?;
            let t = self.cost.h2d_ns(bytes, pinned);
            self.clock.record_dilated(
                Lane::TransferH2D,
                t,
                t * dilate + fault.stall_ns,
                bytes,
                format!("place {id} @{offset}"),
            );
        } else {
            if offset != 0 {
                return Err(DeviceError::BadKernelArgs {
                    kernel: "place_data".into(),
                    reason: format!("offset {offset} into nonexistent buffer {id}"),
                });
            }
            self.check_alloc(bytes)?;
            let buf = Buffer {
                data,
                repr: self.native_repr(),
                pinned: false,
                reserved_bytes: 0,
            };
            self.pool.insert(id, buf)?;
            let alloc = self.cost.alloc_ns(bytes, false);
            self.clock
                .record(Lane::Alloc, alloc, 0, format!("implicit alloc {id}"));
            let t = self.cost.h2d_ns(bytes, false);
            self.clock.record_dilated(
                Lane::TransferH2D,
                t,
                t * dilate + fault.stall_ns,
                bytes,
                format!("place {id}"),
            );
        }
        Ok(())
    }

    fn retrieve_data(
        &mut self,
        id: BufferId,
        len: Option<usize>,
        offset: usize,
    ) -> Result<BufferData> {
        self.ensure_alive()?;
        self.ensure_init()?;
        let fault = self.faults.on_retrieve();
        let buf = self.pool.get(id)?;
        let total = buf.data.len();
        let len = len.unwrap_or(total.saturating_sub(offset));
        if offset + len > total {
            return Err(DeviceError::RangeOutOfBounds {
                id,
                requested_end: offset + len,
                len: total,
            });
        }
        let mut out = buf.data.slice(offset, len);
        let pinned = buf.pinned;
        if fault.corrupt {
            // The device copy stays intact; the payload was damaged in
            // flight, so a retransmit can succeed.
            out.flip_bit(fault.corrupt_at as usize);
        }
        let bytes = out.byte_len();
        let t = self.cost.d2h_ns(bytes, pinned);
        self.clock.record_dilated(
            Lane::TransferD2H,
            t,
            t * self.faults.time_multiplier() + fault.stall_ns,
            bytes,
            format!("retrieve {id}"),
        );
        Ok(out)
    }

    fn prepare_memory(&mut self, id: BufferId, bytes: u64) -> Result<()> {
        self.ensure_alive()?;
        self.ensure_init()?;
        self.check_alloc(bytes)?;
        self.pool.reserve(id, bytes, self.native_repr(), false)?;
        let t = self.cost.alloc_ns(bytes, false);
        self.clock.record(
            Lane::Alloc,
            t,
            0,
            format!("prepare_memory {id} ({bytes} B)"),
        );
        Ok(())
    }

    fn transform_memory(&mut self, id: BufferId, target: SdkRepr) -> Result<TransformKind> {
        self.ensure_alive()?;
        self.ensure_init()?;
        let (from, bytes, pinned) = {
            let buf = self.pool.get(id)?;
            (buf.repr, buf.data.byte_len(), buf.pinned)
        };
        let kind = self.transforms.resolve(from, target);
        match kind {
            TransformKind::ZeroCopy => {
                self.pool.get_mut(id)?.repr = target;
                self.clock.record(
                    Lane::Transform,
                    self.cost.transform_zero_copy_ns,
                    0,
                    format!("transform {id} {from}->{target} (zero-copy)"),
                );
            }
            TransformKind::HostRoundTrip => {
                // Data crosses the bus twice; representation changes on host.
                self.pool.get_mut(id)?.repr = target;
                let down = self.cost.d2h_ns(bytes, pinned);
                let up = self.cost.h2d_ns(bytes, pinned);
                self.clock.record(
                    Lane::TransferD2H,
                    down,
                    bytes,
                    format!("transform {id} {from}->{target} (down)"),
                );
                self.clock.record(
                    Lane::TransferH2D,
                    up,
                    bytes,
                    format!("transform {id} {from}->{target} (up)"),
                );
            }
        }
        Ok(kind)
    }

    fn delete_memory(&mut self, id: BufferId) -> Result<()> {
        self.ensure_alive()?;
        self.ensure_init()?;
        self.pool.remove(id)?;
        self.clock.record(
            Lane::Alloc,
            self.cost.free_overhead_ns,
            0,
            format!("free {id}"),
        );
        Ok(())
    }

    fn prepare_kernel(&mut self, name: &str, source: KernelSource) -> Result<()> {
        self.ensure_alive()?;
        // Binding kernels before initialize() is allowed (paper compiles at
        // initialization); compilation cost is charged when it happens.
        let entry = match source {
            KernelSource::Builtin(f) => f,
            KernelSource::Source { entry, .. } => {
                if !self.supports_compilation {
                    return Err(DeviceError::CompilationUnsupported {
                        device: self.info.name.clone(),
                    });
                }
                self.clock.record(
                    Lane::Compile,
                    self.cost.compile_ns,
                    0,
                    format!("compile {name}"),
                );
                entry
            }
        };
        self.kernels.insert(name.to_string(), entry);
        Ok(())
    }

    fn create_chunk(
        &mut self,
        src: BufferId,
        dst: BufferId,
        offset: usize,
        len: usize,
    ) -> Result<()> {
        self.ensure_alive()?;
        self.ensure_init()?;
        let (slice, repr) = {
            let buf = self.pool.get(src)?;
            if offset + len > buf.data.len() {
                return Err(DeviceError::RangeOutOfBounds {
                    id: src,
                    requested_end: offset + len,
                    len: buf.data.len(),
                });
            }
            (buf.data.slice(offset, len), buf.repr)
        };
        let bytes = slice.byte_len();
        self.check_alloc(bytes)?;
        self.pool.insert(
            dst,
            Buffer {
                data: slice,
                repr,
                pinned: false,
                reserved_bytes: 0,
            },
        )?;
        // Device-internal copy at memory bandwidth.
        let t = bytes as f64 / (self.cost.mem_bandwidth_gibs * 1024.0 * 1024.0 * 1024.0) * 1e9;
        self.clock.record(
            Lane::Compute,
            self.cost.alloc_overhead_ns + t,
            bytes,
            format!("create_chunk {src}->{dst}"),
        );
        Ok(())
    }

    fn add_pinned_memory(&mut self, id: BufferId, bytes: u64) -> Result<()> {
        self.ensure_alive()?;
        self.ensure_init()?;
        self.check_pinned_alloc(bytes)?;
        self.pool.reserve(id, bytes, self.native_repr(), true)?;
        let t = self.cost.alloc_ns(bytes, true);
        self.clock.record(
            Lane::Alloc,
            t,
            0,
            format!("add_pinned_memory {id} ({bytes} B)"),
        );
        Ok(())
    }

    fn execute(&mut self, spec: &ExecuteSpec) -> Result<KernelStats> {
        self.ensure_alive()?;
        self.ensure_init()?;
        // The terminal trigger is checked before `on_execute` advances the
        // ordinal, so `die_on_exec(n)` kills the n-th call itself.
        if self.faults.exec_death_due() {
            return Err(self.die());
        }
        self.faults.on_execute(&spec.kernel)?;
        let kernel = self
            .kernels
            .get(&spec.kernel)
            .cloned()
            .ok_or_else(|| DeviceError::KernelNotFound(spec.kernel.clone()))?;
        let stats = kernel(&mut self.pool, &spec.buffers, &spec.params)?;
        // Fused kernels report a per-stage breakdown and are priced through
        // the fused cost entry (one launch + discounted stage bodies) —
        // the watchdog's fault-free budget sees the same figure, so healthy
        // fused chunks never look like stragglers.
        let t = if stats.stages.is_empty() {
            self.cost
                .kernel_ns(stats.cost_class, stats.elements, spec.arg_count())
        } else {
            self.cost.fused_kernel_ns(&stats.stages, spec.arg_count())
        };
        let actual = t * self.faults.time_multiplier() + self.faults.take_exec_stall();
        self.clock.record_dilated(
            Lane::Compute,
            t,
            actual,
            0,
            format!("kernel {}", spec.kernel),
        );
        Ok(stats)
    }

    fn init_structure(&mut self, id: BufferId, data: BufferData) -> Result<()> {
        self.ensure_alive()?;
        self.ensure_init()?;
        let bytes = data.byte_len();
        self.check_alloc(bytes)?;
        self.pool.insert(
            id,
            Buffer {
                data,
                repr: self.native_repr(),
                pinned: false,
                reserved_bytes: 0,
            },
        )?;
        let memset = bytes as f64 / (self.cost.mem_bandwidth_gibs * 1024.0 * 1024.0 * 1024.0) * 1e9;
        self.clock.record(
            Lane::Alloc,
            self.cost.alloc_ns(bytes, false) + memset,
            0,
            format!("init_structure {id} ({bytes} B)"),
        );
        Ok(())
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn clock_mut(&mut self) -> &mut SimClock {
        &mut self.clock
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn pool_mut(&mut self) -> &mut BufferPool {
        &mut self.pool
    }

    fn reset(&mut self) {
        // Fault state survives reset: the plan is configuration, and its
        // ordinals are per-plan (reinstall the plan to rewind them). Death
        // also survives — it is permanent by definition.
        self.pool.clear();
        self.pool.reset_peak();
        self.clock.reset();
    }

    fn cost_model(&self) -> Option<&CostModel> {
        Some(&self.cost)
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults.install(plan);
    }

    fn fault_counters(&self) -> FaultCounters {
        self.faults.counters()
    }

    fn reset_fault_counters(&mut self) {
        self.faults.reset_counters();
    }

    fn corrupt_checkpoint_capture(&mut self) -> bool {
        self.faults.on_checkpoint_capture()
    }

    fn placement_cost_ns(&self, working_set_bytes: u64, retry_penalty_ns: f64) -> f64 {
        self.cost
            .placement_cost_ns(working_set_bytes, retry_penalty_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostClass;
    use crate::device::{DeviceId, DeviceKind};
    use crate::sdk::SdkKind;
    use std::sync::Arc;

    fn gpu() -> SimDevice {
        let info = DeviceInfo {
            id: DeviceId(0),
            name: "test-gpu".into(),
            kind: DeviceKind::Gpu,
            sdk: SdkKind::Cuda,
            memory_capacity: 1 << 20,
            pinned_capacity: 1 << 18,
        };
        let cost = CostModel {
            discrete: true,
            ..CostModel::default()
        };
        let mut d = SimDevice::new(info, cost, TransformTable::gpu_default(), true);
        d.initialize().unwrap();
        d
    }

    #[test]
    fn requires_initialize() {
        let info = DeviceInfo {
            id: DeviceId(0),
            name: "g".into(),
            kind: DeviceKind::Gpu,
            sdk: SdkKind::Cuda,
            memory_capacity: 1024,
            pinned_capacity: 0,
        };
        let mut d = SimDevice::new(info, CostModel::default(), TransformTable::new(), false);
        assert!(matches!(
            d.place_data(BufferId(1), BufferData::I64(vec![1]), 0),
            Err(DeviceError::NotInitialized)
        ));
        d.initialize().unwrap();
        d.place_data(BufferId(1), BufferData::I64(vec![1]), 0)
            .unwrap();
    }

    #[test]
    fn place_retrieve_roundtrip() {
        let mut d = gpu();
        d.place_data(BufferId(1), BufferData::I64(vec![1, 2, 3, 4]), 0)
            .unwrap();
        let out = d.retrieve_data(BufferId(1), None, 0).unwrap();
        assert_eq!(out, BufferData::I64(vec![1, 2, 3, 4]));
        let part = d.retrieve_data(BufferId(1), Some(2), 1).unwrap();
        assert_eq!(part, BufferData::I64(vec![2, 3]));
        assert!(d.retrieve_data(BufferId(1), Some(9), 0).is_err());
        assert!(d.clock().bytes_h2d() > 0);
        assert!(d.clock().bytes_d2h() > 0);
    }

    #[test]
    fn place_at_offset_overwrites() {
        let mut d = gpu();
        d.place_data(BufferId(1), BufferData::I64(vec![0; 6]), 0)
            .unwrap();
        d.place_data(BufferId(1), BufferData::I64(vec![7, 8]), 2)
            .unwrap();
        let out = d.retrieve_data(BufferId(1), None, 0).unwrap();
        assert_eq!(out, BufferData::I64(vec![0, 0, 7, 8, 0, 0]));
        // Offset into a nonexistent buffer is an error.
        assert!(d
            .place_data(BufferId(9), BufferData::I64(vec![1]), 3)
            .is_err());
        // Kind mismatch is an error.
        assert!(d
            .place_data(BufferId(1), BufferData::U32(vec![1]), 0)
            .is_err());
    }

    #[test]
    fn oom_on_capacity() {
        let mut d = gpu(); // 1 MiB
        let big = vec![0i64; 200_000]; // 1.6 MB
        assert!(matches!(
            d.place_data(BufferId(1), BufferData::I64(big), 0),
            Err(DeviceError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn prepare_then_fill_reserved() {
        let mut d = gpu();
        d.prepare_memory(BufferId(1), 1024).unwrap();
        assert_eq!(d.pool().used(), 1024);
        d.place_data(BufferId(1), BufferData::I64(vec![5; 10]), 0)
            .unwrap();
        assert_eq!(
            d.retrieve_data(BufferId(1), None, 0).unwrap(),
            BufferData::I64(vec![5; 10])
        );
        // Still accounted at the reservation (80 < 1024).
        assert_eq!(d.pool().used(), 1024);
    }

    #[test]
    fn transform_zero_copy_vs_roundtrip() {
        let mut d = gpu();
        d.place_data(BufferId(1), BufferData::I64(vec![1; 1000]), 0)
            .unwrap();
        let before = d.clock().bytes_d2h();
        let k = d.transform_memory(BufferId(1), SdkRepr::ClBuffer).unwrap();
        assert_eq!(k, TransformKind::ZeroCopy);
        assert_eq!(d.clock().bytes_d2h(), before, "zero-copy moved no data");

        // HostVec is not in the GPU family -> round-trip.
        let k = d.transform_memory(BufferId(1), SdkRepr::HostVec).unwrap();
        assert_eq!(k, TransformKind::HostRoundTrip);
        assert!(d.clock().bytes_d2h() > before);
    }

    #[test]
    fn chunk_creation() {
        let mut d = gpu();
        d.place_data(BufferId(1), BufferData::I64((0..100).collect()), 0)
            .unwrap();
        d.create_chunk(BufferId(1), BufferId(2), 10, 5).unwrap();
        assert_eq!(
            d.retrieve_data(BufferId(2), None, 0).unwrap(),
            BufferData::I64(vec![10, 11, 12, 13, 14])
        );
        assert!(d.create_chunk(BufferId(1), BufferId(3), 99, 5).is_err());
    }

    #[test]
    fn kernel_dispatch() {
        let mut d = gpu();
        d.place_data(BufferId(1), BufferData::I64(vec![1, 2, 3]), 0)
            .unwrap();
        d.prepare_memory(BufferId(2), 24).unwrap();
        let add_const: KernelFn = Arc::new(|pool, bufs, params| {
            let c = params[0];
            let input = pool.get(bufs[0])?.data.as_i64().unwrap().clone();
            let mut out = pool.take(bufs[1])?;
            out.data = BufferData::I64(input.iter().map(|x| x + c).collect());
            let n = input.len() as u64;
            pool.restore(bufs[1], out)?;
            Ok(KernelStats::new(n, CostClass::MapLike))
        });
        d.prepare_kernel("add_const", KernelSource::Builtin(add_const))
            .unwrap();
        let stats = d
            .execute(&ExecuteSpec::new(
                "add_const",
                vec![BufferId(1), BufferId(2)],
                vec![10],
            ))
            .unwrap();
        assert_eq!(stats.elements, 3);
        assert_eq!(
            d.retrieve_data(BufferId(2), None, 0).unwrap(),
            BufferData::I64(vec![11, 12, 13])
        );
        assert!(d.clock().compute_ns() > 0.0);
        assert!(d
            .execute(&ExecuteSpec::new("nope", vec![], vec![]))
            .is_err());
    }

    #[test]
    fn compilation_support_flag() {
        let mut d = gpu();
        let f: KernelFn = Arc::new(|_, _, _| Ok(KernelStats::new(0, CostClass::MapLike)));
        d.prepare_kernel(
            "jit",
            KernelSource::Source {
                source: "__kernel void jit() {}".into(),
                entry: f.clone(),
            },
        )
        .unwrap();
        assert_eq!(d.kernel_names(), vec!["jit"]);

        let info = DeviceInfo {
            id: DeviceId(1),
            name: "no-jit".into(),
            kind: DeviceKind::Cpu,
            sdk: SdkKind::OpenMp,
            memory_capacity: 1024,
            pinned_capacity: 0,
        };
        let mut nc = SimDevice::new(info, CostModel::default(), TransformTable::new(), false);
        assert!(matches!(
            nc.prepare_kernel(
                "jit",
                KernelSource::Source {
                    source: "x".into(),
                    entry: f
                }
            ),
            Err(DeviceError::CompilationUnsupported { .. })
        ));
    }

    #[test]
    fn fault_plan_oom_on_nth_allocation() {
        let mut d = gpu();
        d.set_fault_plan(FaultPlan::none().oom_on_allocation(2));
        d.prepare_memory(BufferId(1), 64).unwrap();
        assert!(matches!(
            d.prepare_memory(BufferId(2), 64),
            Err(DeviceError::OutOfMemory { .. })
        ));
        // The ordinal fired once; later allocations succeed again.
        d.prepare_memory(BufferId(3), 64).unwrap();
        assert_eq!(d.fault_counters().oom_injected, 1);
    }

    #[test]
    fn fault_plan_transient_execute_errors() {
        let mut d = gpu();
        let f: KernelFn = Arc::new(|_, _, _| Ok(KernelStats::new(0, CostClass::MapLike)));
        d.prepare_kernel("noop", KernelSource::Builtin(f)).unwrap();
        d.set_fault_plan(FaultPlan::none().transient_exec_errors(1));
        let spec = ExecuteSpec::new("noop", vec![], vec![]);
        assert!(matches!(d.execute(&spec), Err(DeviceError::Driver(_))));
        d.execute(&spec).unwrap();
        assert_eq!(d.fault_counters().transient_exec_injected, 1);
    }

    #[test]
    fn fault_plan_broken_kernel_is_persistent() {
        let mut d = gpu();
        let f: KernelFn = Arc::new(|_, _, _| Ok(KernelStats::new(0, CostClass::MapLike)));
        d.prepare_kernel("bad", KernelSource::Builtin(f.clone()))
            .unwrap();
        d.prepare_kernel("good", KernelSource::Builtin(f)).unwrap();
        d.set_fault_plan(FaultPlan::none().broken_kernel("bad"));
        for _ in 0..3 {
            assert!(d.execute(&ExecuteSpec::new("bad", vec![], vec![])).is_err());
        }
        d.execute(&ExecuteSpec::new("good", vec![], vec![]))
            .unwrap();
        assert_eq!(d.fault_counters().broken_kernel_hits, 3);
    }

    #[test]
    fn fault_plan_capacity_cap() {
        let mut d = gpu(); // real capacity 1 MiB
        d.set_fault_plan(FaultPlan::none().capacity_cap(128));
        d.prepare_memory(BufferId(1), 100).unwrap();
        assert!(matches!(
            d.prepare_memory(BufferId(2), 100),
            Err(DeviceError::OutOfMemory { capacity: 128, .. })
        ));
        // Freeing makes room under the cap again.
        d.delete_memory(BufferId(1)).unwrap();
        d.prepare_memory(BufferId(2), 100).unwrap();
    }

    #[test]
    fn slowdown_dilates_transfers_and_kernels_but_not_clean_ns() {
        let mut fast = gpu();
        let mut slow = gpu();
        slow.set_fault_plan(FaultPlan::none().slowdown(8.0));
        let payload = BufferData::I64((0..1000).collect());
        fast.place_data(BufferId(1), payload.clone(), 0).unwrap();
        slow.place_data(BufferId(1), payload, 0).unwrap();
        let clean_t: f64 = fast
            .clock()
            .events()
            .iter()
            .filter(|e| e.lane.is_transfer())
            .map(|e| e.duration_ns)
            .sum();
        let slow_events: Vec<_> = slow
            .clock()
            .events()
            .iter()
            .filter(|e| e.lane.is_transfer())
            .cloned()
            .collect();
        let slow_t: f64 = slow_events.iter().map(|e| e.duration_ns).sum();
        let slow_clean: f64 = slow_events.iter().map(|e| e.clean_ns).sum();
        assert!((slow_t - 8.0 * clean_t).abs() < 1e-6, "8x dilation");
        assert!(
            (slow_clean - clean_t).abs() < 1e-6,
            "clean_ns reports the undilated model"
        );
        // Data itself is unharmed by a pure straggler.
        assert_eq!(
            slow.retrieve_data(BufferId(1), None, 0).unwrap(),
            fast.retrieve_data(BufferId(1), None, 0).unwrap()
        );
    }

    #[test]
    fn transfer_stall_injects_unbounded_duration() {
        use crate::fault::STALL_NS;
        let mut d = gpu();
        d.set_fault_plan(FaultPlan::none().stall_on_transfer(2));
        d.place_data(BufferId(1), BufferData::I64(vec![1, 2, 3]), 0)
            .unwrap();
        let before = d.clock().transfer_ns();
        assert!(before < STALL_NS);
        let _ = d.retrieve_data(BufferId(1), None, 0).unwrap();
        assert!(d.clock().transfer_ns() >= STALL_NS, "retrieve #2 stalled");
        assert_eq!(d.fault_counters().stalls_injected, 1);
    }

    #[test]
    fn place_corruption_is_visible_in_checksum_echo() {
        let mut d = gpu();
        let payload = BufferData::I64((0..100).collect());
        let sent = payload.checksum();
        d.set_fault_plan(FaultPlan::none().corrupt_on_place(1));
        d.place_data(BufferId(1), payload.clone(), 0).unwrap();
        let echo = d.buffer_checksum(BufferId(1), None, 0).unwrap();
        assert_ne!(echo, sent, "stored payload must differ from what we sent");
        // Retransmit (transfer #2, not scripted) heals the buffer.
        d.place_data(BufferId(1), payload, 0).unwrap();
        assert_eq!(d.buffer_checksum(BufferId(1), None, 0).unwrap(), sent);
        assert_eq!(d.fault_counters().corruptions_injected, 1);
    }

    #[test]
    fn retrieve_corruption_leaves_device_copy_intact() {
        let mut d = gpu();
        let payload = BufferData::I64((0..100).collect());
        d.place_data(BufferId(1), payload.clone(), 0).unwrap();
        d.set_fault_plan(FaultPlan::none().corrupt_on_retrieve(1));
        let dirty = d.retrieve_data(BufferId(1), None, 0).unwrap();
        assert_ne!(dirty, payload, "first retrieve was corrupted in flight");
        assert_ne!(
            dirty.checksum(),
            d.buffer_checksum(BufferId(1), None, 0).unwrap()
        );
        let clean = d.retrieve_data(BufferId(1), None, 0).unwrap();
        assert_eq!(clean, payload, "device copy was never damaged");
    }

    #[test]
    fn checksum_echo_respects_range() {
        let mut d = gpu();
        d.place_data(BufferId(1), BufferData::I64((0..10).collect()), 0)
            .unwrap();
        let whole = d.buffer_checksum(BufferId(1), None, 0).unwrap();
        let prefix = d.buffer_checksum(BufferId(1), Some(4), 0).unwrap();
        assert_ne!(whole, prefix);
        assert_eq!(prefix, BufferData::I64((0..4).collect()).checksum());
        assert_eq!(
            d.buffer_checksum(BufferId(1), Some(3), 4).unwrap(),
            BufferData::I64((4..7).collect()).checksum()
        );
        assert!(d.buffer_checksum(BufferId(9), None, 0).is_err());
    }

    #[test]
    fn exec_death_is_permanent_and_survives_reset() {
        let mut d = gpu();
        let f: KernelFn = Arc::new(|_, _, _| Ok(KernelStats::new(0, CostClass::MapLike)));
        d.prepare_kernel("noop", KernelSource::Builtin(f)).unwrap();
        d.set_fault_plan(FaultPlan::none().die_on_exec(2));
        let spec = ExecuteSpec::new("noop", vec![], vec![]);
        d.execute(&spec).unwrap();
        assert!(!d.is_dead());
        assert!(matches!(d.execute(&spec), Err(DeviceError::Gone { .. })));
        assert!(d.is_dead());
        // Every data-plane operation is now Gone — including re-initialize.
        assert!(matches!(
            d.place_data(BufferId(1), BufferData::I64(vec![1]), 0),
            Err(DeviceError::Gone { .. })
        ));
        assert!(matches!(
            d.delete_memory(BufferId(1)),
            Err(DeviceError::Gone { .. })
        ));
        d.reset();
        assert!(d.is_dead(), "reset must not revive a dead device");
        assert!(matches!(d.initialize(), Err(DeviceError::Gone { .. })));
        // The death was counted exactly once, even after more attempts.
        assert_eq!(d.fault_counters().deaths_injected, 1);
        // Host-side accessors still work on the corpse.
        assert_eq!(d.pool().used(), 0);
        assert_eq!(d.info().name, "test-gpu");
    }

    #[test]
    fn clock_death_fires_once_simulated_time_passes() {
        let mut d = gpu();
        d.place_data(BufferId(1), BufferData::I64(vec![1, 2, 3]), 0)
            .unwrap();
        let now = d.clock().total_ns();
        assert!(now > 0.0);
        d.set_fault_plan(FaultPlan::none().die_at_ns(now / 2.0));
        // The very next operation observes the clock past the instant.
        assert!(matches!(
            d.retrieve_data(BufferId(1), None, 0),
            Err(DeviceError::Gone { .. })
        ));
        assert!(d.is_dead());
        assert_eq!(d.fault_counters().deaths_injected, 1);
    }

    #[test]
    fn future_clock_death_does_not_fire_early() {
        let mut d = gpu();
        d.set_fault_plan(FaultPlan::none().die_at_ns(1.0e18));
        d.place_data(BufferId(1), BufferData::I64(vec![1]), 0)
            .unwrap();
        assert!(!d.is_dead());
        assert_eq!(d.fault_counters().deaths_injected, 0);
    }

    #[test]
    fn reset_fault_counters_clears_accumulated_counts() {
        let mut d = gpu();
        d.set_fault_plan(FaultPlan::none().oom_on_allocation(1));
        assert!(d.prepare_memory(BufferId(1), 64).is_err());
        assert_eq!(d.fault_counters().oom_injected, 1);
        d.reset_fault_counters();
        assert_eq!(d.fault_counters(), FaultCounters::default());
    }

    #[test]
    fn pinned_memory_and_reset() {
        let mut d = gpu();
        d.add_pinned_memory(BufferId(1), 4096).unwrap();
        assert_eq!(d.pool().pinned_used(), 4096);
        d.delete_memory(BufferId(1)).unwrap();
        assert_eq!(d.pool().pinned_used(), 0);
        d.place_data(BufferId(2), BufferData::I64(vec![1]), 0)
            .unwrap();
        d.reset();
        assert_eq!(d.pool().used(), 0);
        assert_eq!(d.clock().total_ns(), 0.0);
    }
}
