//! Analytic cost model for simulated devices.
//!
//! The model's purpose is to reproduce the *relative* performance effects the
//! paper measures without the physical hardware:
//!
//! * Fig. 3 — CUDA transfers faster than OpenCL; pinned faster than pageable.
//! * Fig. 5 — map/reduce roughly bandwidth-bound and similar across SDKs.
//! * Fig. 9 — filter ≈ map; materialization penalty on SIMT devices;
//!   OpenCL hash-aggregation degrading with group count while CUDA stays
//!   flat; hash build degrading with input size; CUDA probe slightly worse
//!   than OpenCL.
//! * Fig. 10 — per-launch argument-mapping overhead makes OpenCL's
//!   abstraction cost the largest.
//! * Fig. 11 — pinned-memory allocation is expensive (especially under
//!   OpenCL), which is what makes 4-phase execution *lose* on shallow
//!   pipelines (Q4/OpenCL) while winning elsewhere.
//!
//! All parameters are plain struct fields so ablation benches can sweep them.

/// Classifies a kernel for costing. Produced by kernels in their
/// [`crate::kernel::KernelStats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CostClass {
    /// One-to-one mapping (arithmetic `MAP`, bitmap logic).
    MapLike,
    /// Block-wise reduction (`AGG_BLOCK`).
    ReduceLike,
    /// Predicate evaluation producing a bitmap (`FILTER_BITMAP`).
    FilterBitmap,
    /// Predicate evaluation producing positions (`FILTER_POSITION`).
    FilterPosition,
    /// Value extraction via bitmap (`MATERIALIZE`); pays the SIMT
    /// bit-extraction penalty on GPUs.
    MaterializeBitmap,
    /// Value extraction via position list (`MATERIALIZE_POSITION`).
    MaterializePosition,
    /// Prefix sum (`PREFIX_SUM`), two bandwidth-bound passes.
    PrefixSum,
    /// Hash-table insertion (`HASH_BUILD`); atomic contention on one shared
    /// table.
    HashBuild,
    /// Hash-table probing (`HASH_PROBE`).
    HashProbe,
    /// Group-by aggregation on a shared table (`HASH_AGG`); `groups` drives
    /// the contention/locality penalty.
    HashAgg {
        /// Number of distinct groups observed.
        groups: u64,
    },
    /// Aggregation over sorted runs (`SORT_AGG`).
    SortAgg,
    /// Sorting (used by top-N / ORDER BY breakers).
    Sort,
    /// Caller-provided nanoseconds per element (custom plugged kernels).
    Custom(f64),
}

/// Per-driver cost parameters. All bandwidths in GiB/s, times in ns.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Host-to-device bandwidth, pageable memory.
    pub h2d_pageable_gibs: f64,
    /// Host-to-device bandwidth, pinned memory.
    pub h2d_pinned_gibs: f64,
    /// Device-to-host bandwidth, pageable memory.
    pub d2h_pageable_gibs: f64,
    /// Device-to-host bandwidth, pinned memory.
    pub d2h_pinned_gibs: f64,
    /// Fixed per-transfer latency (driver call + DMA setup).
    pub transfer_latency_ns: f64,
    /// Fixed kernel-launch overhead.
    pub launch_overhead_ns: f64,
    /// Per-argument overhead at launch (OpenCL's explicit `clSetKernelArg`
    /// mapping; near-zero for CUDA/OpenMP). This term dominates Fig. 10.
    pub per_arg_overhead_ns: f64,
    /// Device memory allocation overhead (fixed).
    pub alloc_overhead_ns: f64,
    /// Pinned-memory registration cost per MiB (page-locking is expensive).
    pub pinned_alloc_per_mib_ns: f64,
    /// Buffer free overhead.
    pub free_overhead_ns: f64,
    /// Runtime kernel compilation cost (0 disables `prepare_kernel` support).
    pub compile_ns: f64,
    /// Device-internal memory bandwidth.
    pub mem_bandwidth_gibs: f64,
    /// Cost of one dependent random access (hash probe step).
    pub random_access_ns: f64,
    /// Cost of one uncontended atomic operation.
    pub atomic_ns: f64,
    /// Group-count sensitivity of shared-table aggregation
    /// (`1 + group_penalty * log2(groups)` multiplier). High for OpenCL's
    /// static scheduling, low for CUDA (paper Fig. 9c).
    pub group_penalty: f64,
    /// Input-size sensitivity of hash build
    /// (`1 + build_size_penalty * log2(n / 2^20)` for n above 1 Mi).
    pub build_size_penalty: f64,
    /// Probe-side multiplier (CUDA slightly worse than OpenCL per Fig. 9e).
    pub probe_penalty: f64,
    /// Bit-extraction multiplier for `MATERIALIZE` from bitmaps; ~3x on SIMT
    /// devices (paper: "about 30% the performance"), ~1.1x on CPUs.
    pub bitmap_extract_penalty: f64,
    /// Zero-copy representation transform cost (bookkeeping only).
    pub transform_zero_copy_ns: f64,
    /// Body-time multiplier for stages of a fused kernel (< 1.0). Fusing
    /// keeps interior values in registers instead of streaming them through
    /// device memory, so each stage's bandwidth-bound body gets cheaper on
    /// top of saving the per-stage launch overheads.
    pub fused_discount: f64,
    /// Whether this device is a SIMT-style co-processor behind a bus
    /// (transfers are billed) or shares host memory (transfers ~free).
    pub discrete: bool,
}

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

impl CostModel {
    /// Time to move `bytes` host→device.
    pub fn h2d_ns(&self, bytes: u64, pinned: bool) -> f64 {
        if !self.discrete {
            // Integrated device: placement is a pointer hand-off.
            return self.transfer_latency_ns;
        }
        let bw = if pinned {
            self.h2d_pinned_gibs
        } else {
            self.h2d_pageable_gibs
        };
        self.transfer_latency_ns + bytes as f64 / (bw * GIB) * 1e9
    }

    /// Time to move `bytes` device→host.
    pub fn d2h_ns(&self, bytes: u64, pinned: bool) -> f64 {
        if !self.discrete {
            return self.transfer_latency_ns;
        }
        let bw = if pinned {
            self.d2h_pinned_gibs
        } else {
            self.d2h_pageable_gibs
        };
        self.transfer_latency_ns + bytes as f64 / (bw * GIB) * 1e9
    }

    /// Effective H2D bandwidth in GiB/s for a given transfer size — the
    /// quantity Fig. 3 plots (latency makes small transfers slower).
    pub fn h2d_effective_gibs(&self, bytes: u64, pinned: bool) -> f64 {
        bytes as f64 / GIB / (self.h2d_ns(bytes, pinned) / 1e9)
    }

    /// Effective D2H bandwidth in GiB/s for a given transfer size.
    pub fn d2h_effective_gibs(&self, bytes: u64, pinned: bool) -> f64 {
        bytes as f64 / GIB / (self.d2h_ns(bytes, pinned) / 1e9)
    }

    /// Time for the allocation of `bytes` (pinned allocations pay
    /// page-locking per MiB).
    pub fn alloc_ns(&self, bytes: u64, pinned: bool) -> f64 {
        if pinned {
            self.alloc_overhead_ns
                + self.pinned_alloc_per_mib_ns * (bytes as f64 / (1 << 20) as f64)
        } else {
            self.alloc_overhead_ns
        }
    }

    /// Kernel execution time for `elements` inputs of the given class.
    ///
    /// `arg_count` models the launch-time argument mapping (Fig. 10).
    pub fn kernel_ns(&self, class: CostClass, elements: u64, arg_count: usize) -> f64 {
        self.launch_ns(arg_count) + self.body_ns(class, elements)
    }

    /// The fixed launch cost for a kernel with `arg_count` arguments.
    pub fn launch_ns(&self, arg_count: usize) -> f64 {
        self.launch_overhead_ns + self.per_arg_overhead_ns * arg_count as f64
    }

    /// Fused-kernel execution time: **one** launch for the whole chain plus
    /// each stage's body discounted by [`CostModel::fused_discount`]. This is
    /// the fused cost entry — placement, watchdog budgets and WFQ billing all
    /// price a fused chain through it, never by summing per-primitive
    /// `kernel_ns` (which would over-charge k-1 launches and undiscounted
    /// bodies).
    pub fn fused_kernel_ns(&self, stages: &[(CostClass, u64)], arg_count: usize) -> f64 {
        let bodies: f64 = stages
            .iter()
            .map(|&(class, elements)| self.body_ns(class, elements))
            .sum();
        self.launch_ns(arg_count) + self.fused_discount * bodies
    }

    /// The per-class, per-element body term of [`CostModel::kernel_ns`]
    /// (everything except the launch).
    pub fn body_ns(&self, class: CostClass, elements: u64) -> f64 {
        let n = elements as f64;
        let stream =
            |bytes_per_elem: f64| n * bytes_per_elem / (self.mem_bandwidth_gibs * GIB) * 1e9;
        match class {
            // read 8B + write 8B per element
            CostClass::MapLike => stream(16.0),
            // read 8B, negligible write
            CostClass::ReduceLike => stream(8.0),
            // read 8B + write 1 bit
            CostClass::FilterBitmap => stream(8.125),
            // position output costs a compacted write
            CostClass::FilterPosition => stream(8.0) + n * 0.5 * self.atomic_ns * 0.1 + stream(4.0),
            CostClass::MaterializeBitmap => stream(16.0) * self.bitmap_extract_penalty,
            CostClass::MaterializePosition => n * self.random_access_ns + stream(8.0),
            CostClass::PrefixSum => stream(16.0) * 2.0,
            CostClass::HashBuild => {
                let size_factor = if elements > (1 << 20) {
                    1.0 + self.build_size_penalty * ((elements >> 20) as f64).log2()
                } else {
                    1.0
                };
                n * (self.random_access_ns + self.atomic_ns) * size_factor
            }
            CostClass::HashProbe => n * self.random_access_ns * self.probe_penalty + stream(8.0),
            CostClass::HashAgg { groups } => {
                let g = groups.max(1) as f64;
                // Few groups => mild atomic serialization on hot slots (the
                // hardware coalesces); many groups => locality/scheduling
                // penalty that is strongly SDK-dependent (`group_penalty` —
                // OpenCL's static scheduling degrades drastically, Fig. 9c).
                let contention = 1.0 + (n / g).min(32.0) / 32.0;
                let locality = 1.0 + self.group_penalty * g.log2().max(0.0);
                n * (self.random_access_ns + self.atomic_ns * contention) * locality
            }
            CostClass::SortAgg => stream(24.0),
            CostClass::Sort => n.max(1.0).log2().max(1.0) * stream(8.0),
            CostClass::Custom(ns_per_elem) => n * ns_per_elem,
        }
    }

    /// Primitive throughput in Gi elements/s — the y-axis of Figs. 5 and 9.
    pub fn throughput_gips(&self, class: CostClass, elements: u64, arg_count: usize) -> f64 {
        let t_s = self.kernel_ns(class, elements, arg_count) / 1e9;
        elements as f64 / (1u64 << 30) as f64 / t_s
    }

    /// Recovery-aware placement cost: what moving a `working_set_bytes`
    /// working set onto this device is expected to cost, including the
    /// expected-retry penalty the health registry derived from the device's
    /// observed failure rate (failure rate × average wasted modeled time).
    ///
    /// Fallback placement ranks candidates by this value, so a flaky or
    /// memory-tight device loses ties against an equally capable healthy one
    /// instead of winning them by id order.
    pub fn placement_cost_ns(&self, working_set_bytes: u64, retry_penalty_ns: f64) -> f64 {
        self.h2d_ns(working_set_bytes, false) + retry_penalty_ns.max(0.0)
    }

    /// [`CostModel::placement_cost_ns`] discounted by bytes already resident
    /// on the device (a residency-cache pin): only the *missing* part of the
    /// working set pays transfer. A fully cached working set prices at zero
    /// transfer — just the health penalty.
    pub fn placement_cost_ns_resident(
        &self,
        working_set_bytes: u64,
        resident_bytes: u64,
        retry_penalty_ns: f64,
    ) -> f64 {
        let moved = working_set_bytes.saturating_sub(resident_bytes);
        if moved == 0 {
            retry_penalty_ns.max(0.0)
        } else {
            self.placement_cost_ns(moved, retry_penalty_ns)
        }
    }
}

impl Default for CostModel {
    /// A neutral host-like model (integrated, moderate bandwidth).
    fn default() -> Self {
        CostModel {
            h2d_pageable_gibs: 10.0,
            h2d_pinned_gibs: 10.0,
            d2h_pageable_gibs: 10.0,
            d2h_pinned_gibs: 10.0,
            transfer_latency_ns: 1_000.0,
            launch_overhead_ns: 2_000.0,
            per_arg_overhead_ns: 0.0,
            alloc_overhead_ns: 2_000.0,
            pinned_alloc_per_mib_ns: 0.0,
            free_overhead_ns: 500.0,
            compile_ns: 0.0,
            mem_bandwidth_gibs: 30.0,
            random_access_ns: 6.0,
            atomic_ns: 4.0,
            group_penalty: 0.05,
            build_size_penalty: 0.05,
            probe_penalty: 1.0,
            bitmap_extract_penalty: 1.1,
            transform_zero_copy_ns: 300.0,
            fused_discount: 0.8,
            discrete: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn discrete() -> CostModel {
        CostModel {
            discrete: true,
            h2d_pageable_gibs: 10.0,
            h2d_pinned_gibs: 20.0,
            ..CostModel::default()
        }
    }

    #[test]
    fn pinned_transfer_faster() {
        let m = discrete();
        let big = 1u64 << 30;
        assert!(m.h2d_ns(big, true) < m.h2d_ns(big, false));
        // Roughly 2x for large transfers.
        let ratio = m.h2d_ns(big, false) / m.h2d_ns(big, true);
        assert!(ratio > 1.8 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn effective_bandwidth_rises_with_size() {
        let m = discrete();
        let small = m.h2d_effective_gibs(1 << 20, false);
        let large = m.h2d_effective_gibs(1 << 30, false);
        assert!(large > small);
        assert!(large <= 10.0 + 1e-9);
    }

    #[test]
    fn integrated_transfers_flat() {
        let m = CostModel::default();
        assert_eq!(m.h2d_ns(1 << 30, false), m.transfer_latency_ns);
    }

    #[test]
    fn hash_agg_group_penalty_monotone() {
        let m = CostModel {
            group_penalty: 0.35,
            ..CostModel::default()
        };
        let few = m.kernel_ns(CostClass::HashAgg { groups: 16 }, 1 << 24, 3);
        let many = m.kernel_ns(CostClass::HashAgg { groups: 1 << 20 }, 1 << 24, 3);
        assert!(
            many > few,
            "many-group agg should be slower: {many} vs {few}"
        );
    }

    #[test]
    fn build_degrades_with_size() {
        let m = CostModel {
            build_size_penalty: 0.2,
            ..CostModel::default()
        };
        let per_elem_small = m.kernel_ns(CostClass::HashBuild, 1 << 20, 2) / (1u64 << 20) as f64;
        let per_elem_big = m.kernel_ns(CostClass::HashBuild, 1 << 28, 2) / (1u64 << 28) as f64;
        assert!(per_elem_big > per_elem_small);
    }

    #[test]
    fn materialize_penalty_applied() {
        let simt = CostModel {
            bitmap_extract_penalty: 3.0,
            ..CostModel::default()
        };
        let map = simt.kernel_ns(CostClass::MapLike, 1 << 24, 2);
        let mat = simt.kernel_ns(CostClass::MaterializeBitmap, 1 << 24, 3);
        assert!(mat > 2.5 * map);
    }

    #[test]
    fn pinned_alloc_charged_per_mib() {
        let m = CostModel {
            pinned_alloc_per_mib_ns: 100_000.0,
            ..CostModel::default()
        };
        let a = m.alloc_ns(1 << 20, true);
        let b = m.alloc_ns(1 << 24, true);
        assert!(b > a);
        assert_eq!(m.alloc_ns(1 << 24, false), m.alloc_overhead_ns);
    }

    #[test]
    fn arg_overhead_in_launch() {
        let m = CostModel {
            per_arg_overhead_ns: 1_000.0,
            ..CostModel::default()
        };
        let few = m.kernel_ns(CostClass::MapLike, 1024, 1);
        let many = m.kernel_ns(CostClass::MapLike, 1024, 9);
        assert!((many - few - 8_000.0).abs() < 1e-6);
    }

    #[test]
    fn fused_strictly_cheaper_than_stage_sum() {
        let m = CostModel {
            per_arg_overhead_ns: 1_000.0,
            ..CostModel::default()
        };
        let stages = [
            (CostClass::FilterBitmap, 1u64 << 20),
            (CostClass::MaterializeBitmap, 1 << 20),
            (CostClass::ReduceLike, 1 << 19),
        ];
        // Unfused: each stage pays its own launch (3 args each, say).
        let unfused: f64 = stages.iter().map(|&(c, n)| m.kernel_ns(c, n, 3)).sum();
        // Fused: one launch (more args) + discounted bodies.
        let fused = m.fused_kernel_ns(&stages, 9);
        assert!(fused < unfused, "fused {fused} >= unfused {unfused}");
        // And the decomposition holds exactly.
        let bodies: f64 = stages.iter().map(|&(c, n)| m.body_ns(c, n)).sum();
        assert!((fused - (m.launch_ns(9) + m.fused_discount * bodies)).abs() < 1e-9);
        // kernel_ns is launch + body.
        let k = m.kernel_ns(CostClass::MapLike, 1024, 4);
        assert!((k - (m.launch_ns(4) + m.body_ns(CostClass::MapLike, 1024))).abs() < 1e-9);
    }

    #[test]
    fn throughput_sane() {
        let m = CostModel::default();
        let t = m.throughput_gips(CostClass::MapLike, 1 << 28, 2);
        assert!(t > 0.0 && t < 100.0);
    }

    #[test]
    fn placement_cost_charges_retry_penalty() {
        let m = discrete();
        let healthy = m.placement_cost_ns(1 << 20, 0.0);
        let flaky = m.placement_cost_ns(1 << 20, 50_000.0);
        assert_eq!(healthy, m.h2d_ns(1 << 20, false));
        assert!((flaky - healthy - 50_000.0).abs() < 1e-9);
        // Negative penalties (a bug upstream) must not discount a device.
        assert_eq!(m.placement_cost_ns(1 << 20, -10.0), healthy);
    }

    #[test]
    fn resident_discount_prices_cache_hits_at_zero_transfer() {
        let m = discrete();
        let cold = m.placement_cost_ns_resident(1 << 20, 0, 0.0);
        assert_eq!(cold, m.placement_cost_ns(1 << 20, 0.0));
        // Half the working set cached: only the rest pays transfer.
        let half = m.placement_cost_ns_resident(1 << 20, 1 << 19, 0.0);
        assert_eq!(half, m.placement_cost_ns(1 << 19, 0.0));
        assert!(half < cold);
        // Fully cached: zero transfer, only the health penalty survives.
        assert_eq!(m.placement_cost_ns_resident(1 << 20, 1 << 20, 0.0), 0.0);
        assert_eq!(
            m.placement_cost_ns_resident(1 << 20, u64::MAX, 7_500.0),
            7_500.0
        );
    }
}
