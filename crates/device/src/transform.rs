//! SDK-representation transforms (paper Fig. 4).
//!
//! Two SDKs on the same physical device interpret the same memory through
//! different handle types (e.g. `CUdeviceptr` vs `cl_mem`). A naive engine
//! round-trips through the host to convert; ADAMANT's `transform_memory`
//! re-tags the memory **in place** when a zero-copy path is known. The
//! [`TransformTable`] is the data-container lookup table from §III-B1.

use crate::sdk::SdkRepr;
use std::collections::HashMap;

/// How a conversion between two representations is realized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransformKind {
    /// Handle re-interpretation; no data moves.
    ZeroCopy,
    /// Transfer to host, convert, transfer back (the naive fallback the
    /// paper's Fig. 4 discussion warns about). Costs two bus crossings.
    HostRoundTrip,
}

/// Lookup table of known representation conversions.
#[derive(Clone, Debug, Default)]
pub struct TransformTable {
    paths: HashMap<(SdkRepr, SdkRepr), TransformKind>,
}

impl TransformTable {
    /// An empty table: every conversion falls back to a host round-trip.
    pub fn new() -> Self {
        TransformTable::default()
    }

    /// The table a GPU device ships with: CUDA-family and OpenCL-family
    /// handles inter-convert zero-copy within their families, and
    /// CUDA↔OpenCL is also zero-copy on the same physical device (both are
    /// views of the same VRAM).
    pub fn gpu_default() -> Self {
        let mut t = TransformTable::new();
        let reprs = [
            SdkRepr::CudaDevPtr,
            SdkRepr::ThrustDevVec,
            SdkRepr::ClBuffer,
            SdkRepr::BoostComputeVec,
        ];
        for &a in &reprs {
            for &b in &reprs {
                if a != b {
                    t.register(a, b, TransformKind::ZeroCopy);
                }
            }
        }
        t
    }

    /// Registers a conversion path.
    pub fn register(&mut self, from: SdkRepr, to: SdkRepr, kind: TransformKind) {
        self.paths.insert((from, to), kind);
    }

    /// Resolves a conversion. Identity is always zero-copy; unknown pairs
    /// fall back to [`TransformKind::HostRoundTrip`].
    pub fn resolve(&self, from: SdkRepr, to: SdkRepr) -> TransformKind {
        if from == to {
            return TransformKind::ZeroCopy;
        }
        self.paths
            .get(&(from, to))
            .copied()
            .unwrap_or(TransformKind::HostRoundTrip)
    }

    /// Number of registered (non-identity) paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when no paths are registered.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_zero_copy() {
        let t = TransformTable::new();
        assert_eq!(
            t.resolve(SdkRepr::ClBuffer, SdkRepr::ClBuffer),
            TransformKind::ZeroCopy
        );
    }

    #[test]
    fn unknown_falls_back_to_roundtrip() {
        let t = TransformTable::new();
        assert_eq!(
            t.resolve(SdkRepr::ClBuffer, SdkRepr::CudaDevPtr),
            TransformKind::HostRoundTrip
        );
    }

    #[test]
    fn gpu_default_is_zero_copy_between_sdk_families() {
        let t = TransformTable::gpu_default();
        assert_eq!(
            t.resolve(SdkRepr::CudaDevPtr, SdkRepr::ClBuffer),
            TransformKind::ZeroCopy
        );
        assert_eq!(
            t.resolve(SdkRepr::ThrustDevVec, SdkRepr::BoostComputeVec),
            TransformKind::ZeroCopy
        );
        // Host representation is not part of the GPU family.
        assert_eq!(
            t.resolve(SdkRepr::CudaDevPtr, SdkRepr::HostVec),
            TransformKind::HostRoundTrip
        );
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn register_overrides() {
        let mut t = TransformTable::new();
        t.register(
            SdkRepr::Custom(1),
            SdkRepr::Custom(2),
            TransformKind::ZeroCopy,
        );
        assert_eq!(
            t.resolve(SdkRepr::Custom(1), SdkRepr::Custom(2)),
            TransformKind::ZeroCopy
        );
        // Reverse direction was not registered.
        assert_eq!(
            t.resolve(SdkRepr::Custom(2), SdkRepr::Custom(1)),
            TransformKind::HostRoundTrip
        );
    }
}
