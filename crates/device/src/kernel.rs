//! Kernel plumbing: how compiled functions are bound to a device and invoked.
//!
//! The paper's task layer hands the device a *kernel container* (either a
//! pre-built function or source to compile at init). Here a kernel is a
//! `Send + Sync` closure over the device's [`BufferPool`]; `execute()`
//! dispatches to it and charges the returned [`KernelStats`] to the cost
//! model.

use crate::buffer::BufferId;
use crate::cost::CostClass;
use crate::error::Result;
use crate::pool::BufferPool;
use std::sync::Arc;

/// What a kernel reports back for costing.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelStats {
    /// Elements processed (drives bandwidth-bound cost terms).
    pub elements: u64,
    /// Cost class (drives the per-class formula).
    pub cost_class: CostClass,
    /// Per-stage `(class, elements)` breakdown reported by fused kernels.
    /// Empty for ordinary kernels. When non-empty the device prices the
    /// launch through [`crate::cost::CostModel::fused_kernel_ns`] — one
    /// launch overhead plus discounted per-stage bodies — instead of the
    /// single-class formula.
    pub stages: Vec<(CostClass, u64)>,
}

impl KernelStats {
    /// Convenience constructor.
    pub fn new(elements: u64, cost_class: CostClass) -> Self {
        KernelStats {
            elements,
            cost_class,
            stages: Vec::new(),
        }
    }

    /// Constructor for fused kernels reporting a per-stage breakdown.
    pub fn fused(elements: u64, cost_class: CostClass, stages: Vec<(CostClass, u64)>) -> Self {
        KernelStats {
            elements,
            cost_class,
            stages,
        }
    }
}

/// A kernel implementation bound into a device.
///
/// Kernels receive the device's pool (take/restore buffers to mutate them)
/// plus the invocation's buffer arguments and scalar parameters — mirroring
/// `clSetKernelArg`'s buffer/scalar split in the paper's Listing 5.
pub type KernelFn =
    Arc<dyn Fn(&mut BufferPool, &[BufferId], &[i64]) -> Result<KernelStats> + Send + Sync>;

/// How a kernel arrives at the device (paper §III-B1: hand-written,
/// library, or generated/compiled at runtime).
#[derive(Clone)]
pub enum KernelSource {
    /// A pre-built function (hand-written or from a library).
    Builtin(KernelFn),
    /// Source code compiled by the driver at `prepare_kernel` time.
    ///
    /// The simulator charges the model's compile cost and then binds the
    /// provided function, standing in for a JIT: the *interface contract*
    /// (optional runtime compilation, compile-at-init) is what matters to
    /// the runtime.
    Source {
        /// Source text (kept for introspection).
        source: String,
        /// Compiled entry point.
        entry: KernelFn,
    },
}

impl std::fmt::Debug for KernelSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelSource::Builtin(_) => f.write_str("KernelSource::Builtin(..)"),
            KernelSource::Source { source, .. } => f
                .debug_struct("KernelSource::Source")
                .field("source_len", &source.len())
                .finish(),
        }
    }
}

/// One `execute()` request: a named kernel, buffer arguments and scalar
/// parameters.
#[derive(Clone, Debug)]
pub struct ExecuteSpec {
    /// Name of a kernel previously bound with `prepare_kernel`.
    pub kernel: String,
    /// Buffer arguments, positional.
    pub buffers: Vec<BufferId>,
    /// Scalar parameters, positional.
    pub params: Vec<i64>,
}

impl ExecuteSpec {
    /// Creates a spec.
    pub fn new(kernel: impl Into<String>, buffers: Vec<BufferId>, params: Vec<i64>) -> Self {
        ExecuteSpec {
            kernel: kernel.into(),
            buffers,
            params,
        }
    }

    /// Number of launch arguments (buffers + scalars), the quantity OpenCL
    /// pays per-argument mapping for (Fig. 10).
    pub fn arg_count(&self) -> usize {
        self.buffers.len() + self.params.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_count() {
        let spec = ExecuteSpec::new("map", vec![BufferId(1), BufferId(2)], vec![7]);
        assert_eq!(spec.arg_count(), 3);
        assert_eq!(spec.kernel, "map");
    }

    #[test]
    fn debug_impls() {
        let f: KernelFn = Arc::new(|_, _, _| Ok(KernelStats::new(0, CostClass::MapLike)));
        let b = KernelSource::Builtin(f.clone());
        let s = KernelSource::Source {
            source: "__kernel void f()".into(),
            entry: f,
        };
        assert!(format!("{b:?}").contains("Builtin"));
        assert!(format!("{s:?}").contains("source_len"));
    }
}
