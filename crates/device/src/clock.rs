//! The simulated device clock.
//!
//! Every costed operation a driver performs is recorded as a [`CostEvent`]
//! on the device's [`SimClock`]. The execution models in `adamant-core`
//! consume these events to build a query timeline: the chunked model sums
//! transfer and compute serially, the pipelined/4-phase models overlap the
//! lanes (paper Figs. 6 and 8).

/// Which lane of the device an event occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Host→device transfer (copy engine).
    TransferH2D,
    /// Device→host transfer (copy engine).
    TransferD2H,
    /// Kernel execution (compute engine).
    Compute,
    /// Memory allocation / free / registration.
    Alloc,
    /// Representation transform (`transform_memory`).
    Transform,
    /// Runtime kernel compilation.
    Compile,
}

impl Lane {
    /// Whether this lane belongs to the copy engine (can overlap compute).
    pub fn is_transfer(self) -> bool {
        matches!(self, Lane::TransferH2D | Lane::TransferD2H)
    }
}

/// One costed operation.
#[derive(Clone, Debug, PartialEq)]
pub struct CostEvent {
    /// Lane occupied.
    pub lane: Lane,
    /// Modeled duration in nanoseconds (after any injected dilation).
    pub duration_ns: f64,
    /// Fault-free modeled duration in nanoseconds: what the cost model
    /// predicted before slowdown/stall injection. Watchdog budgets are
    /// derived from this value; for undilated events it equals
    /// `duration_ns`.
    pub clean_ns: f64,
    /// Bytes moved (0 for pure compute).
    pub bytes: u64,
    /// Human-readable label (kernel or buffer description).
    pub label: String,
}

/// Per-device event recorder with running totals.
#[derive(Debug, Default)]
pub struct SimClock {
    events: Vec<CostEvent>,
    total_ns: f64,
    transfer_ns: f64,
    compute_ns: f64,
    bytes_h2d: u64,
    bytes_d2h: u64,
}

impl SimClock {
    /// Creates an empty clock.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Records an event whose actual duration matches the cost model.
    pub fn record(&mut self, lane: Lane, duration_ns: f64, bytes: u64, label: impl Into<String>) {
        self.record_dilated(lane, duration_ns, duration_ns, bytes, label);
    }

    /// Records an event whose actual duration diverges from the fault-free
    /// model (straggler injection dilates transfers and kernels). Totals use
    /// the *actual* duration; `clean_ns` rides along for watchdog budgets.
    pub fn record_dilated(
        &mut self,
        lane: Lane,
        clean_ns: f64,
        duration_ns: f64,
        bytes: u64,
        label: impl Into<String>,
    ) {
        self.total_ns += duration_ns;
        match lane {
            Lane::TransferH2D => {
                self.transfer_ns += duration_ns;
                self.bytes_h2d += bytes;
            }
            Lane::TransferD2H => {
                self.transfer_ns += duration_ns;
                self.bytes_d2h += bytes;
            }
            Lane::Compute => self.compute_ns += duration_ns,
            _ => {}
        }
        self.events.push(CostEvent {
            lane,
            duration_ns,
            clean_ns,
            bytes,
            label: label.into(),
        });
    }

    /// Removes and returns all recorded events (the runtime drains after
    /// each step to attribute costs to chunks/primitives).
    pub fn drain_events(&mut self) -> Vec<CostEvent> {
        std::mem::take(&mut self.events)
    }

    /// Events recorded since the last drain.
    pub fn events(&self) -> &[CostEvent] {
        &self.events
    }

    /// Sum of all event durations ever recorded (serial total).
    pub fn total_ns(&self) -> f64 {
        self.total_ns
    }

    /// Total transfer time (both directions).
    pub fn transfer_ns(&self) -> f64 {
        self.transfer_ns
    }

    /// Total compute time.
    pub fn compute_ns(&self) -> f64 {
        self.compute_ns
    }

    /// Bytes moved host→device.
    pub fn bytes_h2d(&self) -> u64 {
        self.bytes_h2d
    }

    /// Bytes moved device→host.
    pub fn bytes_d2h(&self) -> u64 {
        self.bytes_d2h
    }

    /// Clears events and totals (between experiments).
    pub fn reset(&mut self) {
        *self = SimClock::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut c = SimClock::new();
        c.record(Lane::TransferH2D, 100.0, 1024, "in");
        c.record(Lane::Compute, 50.0, 0, "map");
        c.record(Lane::TransferD2H, 25.0, 512, "out");
        c.record(Lane::Alloc, 10.0, 0, "alloc");
        assert_eq!(c.total_ns(), 185.0);
        assert_eq!(c.transfer_ns(), 125.0);
        assert_eq!(c.compute_ns(), 50.0);
        assert_eq!(c.bytes_h2d(), 1024);
        assert_eq!(c.bytes_d2h(), 512);
    }

    #[test]
    fn drain_empties_but_keeps_totals() {
        let mut c = SimClock::new();
        c.record(Lane::Compute, 5.0, 0, "k");
        let ev = c.drain_events();
        assert_eq!(ev.len(), 1);
        assert!(c.events().is_empty());
        assert_eq!(c.total_ns(), 5.0);
        c.reset();
        assert_eq!(c.total_ns(), 0.0);
    }

    #[test]
    fn dilated_events_keep_clean_duration() {
        let mut c = SimClock::new();
        c.record(Lane::Compute, 5.0, 0, "k");
        c.record_dilated(Lane::TransferH2D, 10.0, 80.0, 64, "slow place");
        assert_eq!(c.total_ns(), 85.0, "totals bill the actual duration");
        assert_eq!(c.transfer_ns(), 80.0);
        let ev = c.drain_events();
        assert_eq!(ev[0].clean_ns, ev[0].duration_ns);
        assert_eq!(ev[1].clean_ns, 10.0);
        assert_eq!(ev[1].duration_ns, 80.0);
    }

    #[test]
    fn lane_classification() {
        assert!(Lane::TransferH2D.is_transfer());
        assert!(Lane::TransferD2H.is_transfer());
        assert!(!Lane::Compute.is_transfer());
        assert!(!Lane::Alloc.is_transfer());
    }
}
