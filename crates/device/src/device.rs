//! The `Device` trait — ADAMANT's ten pluggable interfaces.

use crate::buffer::{BufferData, BufferId};
use crate::clock::SimClock;
use crate::error::Result;
use crate::fault::{FaultCounters, FaultPlan};
use crate::kernel::{ExecuteSpec, KernelSource, KernelStats};
use crate::pool::BufferPool;
use crate::sdk::{SdkKind, SdkRepr};
use crate::transform::TransformKind;
use std::fmt;

/// Identifier for a device within the engine's registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev#{}", self.0)
    }
}

/// Broad device class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Host CPU (possibly many cores).
    Cpu,
    /// Discrete GPU behind a bus.
    Gpu,
    /// Anything else a user plugs in (FPGA, NPU, smart NIC front end…).
    Accelerator,
}

/// Static description of a plugged device.
#[derive(Clone, Debug)]
pub struct DeviceInfo {
    /// Registry id.
    pub id: DeviceId,
    /// Human-readable name, e.g. `"gpu0 (cuda, rtx2080ti-class)"`.
    pub name: String,
    /// Device class.
    pub kind: DeviceKind,
    /// SDK this driver speaks.
    pub sdk: SdkKind,
    /// Device memory capacity in bytes.
    pub memory_capacity: u64,
    /// Pinned (host-accessible) pool capacity in bytes.
    pub pinned_capacity: u64,
}

/// ADAMANT's device-layer interface (paper §III-A).
///
/// Implementing this trait is all that is required to plug a new
/// co-processor or SDK into the executor; the runtime layer only ever talks
/// through these methods. The ten paper interfaces map to the ten required
/// methods below; `clock`/`pool` accessors expose the simulation state the
/// runtime uses for statistics (a real driver would surface hardware
/// counters the same way).
pub trait Device: Send {
    /// Static device description.
    fn info(&self) -> &DeviceInfo;

    /// `initialize()`: set device properties, compile pre-registered
    /// kernels. Must be called before any other operation.
    fn initialize(&mut self) -> Result<()>;

    /// `place_data(data, size, offset)`: push data into device memory.
    ///
    /// With `offset == 0` and no existing buffer, creates the buffer. With an
    /// existing buffer, overwrites elements starting at `offset` (chunk
    /// uploads into pinned staging buffers use this).
    fn place_data(&mut self, id: BufferId, data: BufferData, offset: usize) -> Result<()>;

    /// `retrieve_data(id, size, offset)`: read `len` elements back to the
    /// host (`None` = the whole buffer).
    fn retrieve_data(
        &mut self,
        id: BufferId,
        len: Option<usize>,
        offset: usize,
    ) -> Result<BufferData>;

    /// `prepare_memory(size)`: allocate `bytes` of device memory for `id`.
    fn prepare_memory(&mut self, id: BufferId, bytes: u64) -> Result<()>;

    /// `transform_memory(source, target)`: convert a buffer's SDK
    /// representation, zero-copy when the transform table allows.
    fn transform_memory(&mut self, id: BufferId, target: SdkRepr) -> Result<TransformKind>;

    /// `delete_memory(id)`: free a buffer.
    fn delete_memory(&mut self, id: BufferId) -> Result<()>;

    /// `prepare_kernel(name, location)`: bind (and for source kernels,
    /// compile) a kernel under `name`. Optional per the paper — drivers
    /// without runtime compilation reject [`KernelSource::Source`].
    fn prepare_kernel(&mut self, name: &str, source: KernelSource) -> Result<()>;

    /// `create_chunk(ID, chunk size, offset)`: materialize a device-side
    /// sub-buffer `dst` holding `len` elements of `src` starting at `offset`.
    fn create_chunk(
        &mut self,
        src: BufferId,
        dst: BufferId,
        offset: usize,
        len: usize,
    ) -> Result<()>;

    /// `add_pinned_memory(ID, chunk size, offset)`: reserve host-accessible
    /// pinned memory for `id` (fast staging for the 4-phase model).
    fn add_pinned_memory(&mut self, id: BufferId, bytes: u64) -> Result<()>;

    /// `execute()`: run a prepared kernel against device buffers.
    fn execute(&mut self, spec: &ExecuteSpec) -> Result<KernelStats>;

    /// Allocates and initializes a device-resident structure (empty hash
    /// table, zeroed accumulator) **without** a host transfer — the
    /// device-side half of the runtime's `prepare_output_buffer`.
    ///
    /// Cost: one allocation plus an on-device initialization at memory
    /// bandwidth (like `cudaMemset` after `cudaMalloc`).
    fn init_structure(&mut self, id: BufferId, data: BufferData) -> Result<()>;

    /// The device's cost clock (statistics, timelines).
    fn clock(&self) -> &SimClock;

    /// Mutable clock access (the runtime drains events after each step).
    fn clock_mut(&mut self) -> &mut SimClock;

    /// The device's buffer pool (read-only inspection: usage, peak).
    fn pool(&self) -> &BufferPool;

    /// Mutable pool access — the multi-query scheduler drives the admission
    /// ledger ([`BufferPool::admission_reserve`]/[`BufferPool::admission_release`])
    /// through it.
    fn pool_mut(&mut self) -> &mut BufferPool;

    /// Frees all buffers and resets usage (between queries/experiments).
    fn reset(&mut self);

    /// The device's kernel cost model, when it has one. The runtime uses it
    /// for read-only accounting (e.g. pricing what a fused chain would have
    /// cost unfused); drivers for real hardware may have no analytical model,
    /// so the default is `None`.
    fn cost_model(&self) -> Option<&crate::cost::CostModel> {
        None
    }

    /// Installs a deterministic fault-injection plan.
    ///
    /// Optional: drivers for real hardware have nothing to inject, so the
    /// default is a no-op. [`crate::sim::SimDevice`] honors the plan.
    fn set_fault_plan(&mut self, _plan: FaultPlan) {}

    /// Counters of faults injected so far (all zero for drivers that do not
    /// support injection).
    fn fault_counters(&self) -> FaultCounters {
        FaultCounters::default()
    }

    /// Zeroes the injected-fault counters without touching the installed
    /// plan or its ordinals, so back-to-back soak iterations start from a
    /// clean slate. No-op for drivers without injection.
    fn reset_fault_counters(&mut self) {}

    /// Asked once per query-checkpoint capture: returns whether this
    /// device's fault plan scripts the snapshot being captured right now to
    /// be damaged ([`FaultPlan::corrupt_checkpoint`], 1-based capture
    /// ordinals). Drivers without injection never corrupt, so the default
    /// returns `false`. [`crate::sim::SimDevice`] honors the plan.
    fn corrupt_checkpoint_capture(&mut self) -> bool {
        false
    }

    /// Recovery-aware placement cost of moving a `working_set_bytes` working
    /// set onto this device, given the expected-retry penalty the health
    /// registry attributes to it. Fallback placement ranks candidate devices
    /// by this value (ties broken by lowest id).
    ///
    /// The default charges only the penalty — drivers without a cost model
    /// still let health feedback order candidates.
    /// [`crate::sim::SimDevice`] adds its modeled transfer cost via
    /// [`crate::cost::CostModel::placement_cost_ns`].
    fn placement_cost_ns(&self, _working_set_bytes: u64, retry_penalty_ns: f64) -> f64 {
        retry_penalty_ns.max(0.0)
    }

    /// [`Device::placement_cost_ns`] discounted by working-set bytes already
    /// resident on the device (a residency-cache pin): only the missing part
    /// pays transfer, so a cache-warm device prices a hit at zero transfer.
    fn placement_cost_ns_resident(
        &self,
        working_set_bytes: u64,
        resident_bytes: u64,
        retry_penalty_ns: f64,
    ) -> f64 {
        let moved = working_set_bytes.saturating_sub(resident_bytes);
        if moved == 0 {
            retry_penalty_ns.max(0.0)
        } else {
            self.placement_cost_ns(moved, retry_penalty_ns)
        }
    }

    /// Echoes the checksum of the stored elements `offset..offset+len` of
    /// buffer `id` (`len == None` = through the end of the buffer), as the
    /// device sees them — *after* any transfer corruption.
    ///
    /// The hub compares this echo against the checksum of what it sent to
    /// detect silent corruption end-to-end. The echo is an 8-byte control
    /// message, so it is deliberately free on the simulated clock. The
    /// default implementation reads the device's own pool, which is correct
    /// for any driver whose `place_data` stores through [`Self::pool_mut`].
    fn buffer_checksum(&self, id: BufferId, len: Option<usize>, offset: usize) -> Result<u64> {
        let buf = self.pool().get(id)?;
        let n = len.unwrap_or_else(|| buf.data.len().saturating_sub(offset));
        Ok(buf.data.slice(offset, n).checksum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(DeviceId(3).to_string(), "dev#3");
    }
}
