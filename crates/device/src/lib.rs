//! # adamant-device
//!
//! The **device layer** of ADAMANT (paper §III-A): pluggable interfaces that
//! let arbitrary co-processors and SDKs be integrated into the query executor
//! without touching the runtime.
//!
//! The paper defines ten interface functions per device driver; the
//! [`Device`] trait is their Rust form:
//!
//! | Paper interface | Trait method |
//! |---|---|
//! | `place_data(data, size, offset)` | [`Device::place_data`] |
//! | `retrieve_data(id, size, offset)` | [`Device::retrieve_data`] |
//! | `prepare_memory(size)` | [`Device::prepare_memory`] |
//! | `transform_memory(source, target)` | [`Device::transform_memory`] |
//! | `delete_memory(id)` | [`Device::delete_memory`] |
//! | `prepare_kernel(name, location)` | [`Device::prepare_kernel`] |
//! | `initialize()` | [`Device::initialize`] |
//! | `create_chunk(ID, chunk size, offset)` | [`Device::create_chunk`] |
//! | `add_pinned_memory(ID, chunk size, offset)` | [`Device::add_pinned_memory`] |
//! | `execute()` | [`Device::execute`] |
//!
//! ## Hardware simulation
//!
//! This reproduction runs without GPUs. [`sim::SimDevice`] is a faithful
//! *simulated* driver: buffers live in a bounded host-memory [`pool::BufferPool`]
//! (so out-of-memory behaviour is real), kernels really execute (results are
//! exact), and elapsed time is produced by a calibrated [`cost::CostModel`]
//! recorded on a [`clock::SimClock`]. Driver profiles for CUDA-, OpenCL- and
//! OpenMP-style SDKs live in [`profiles`]; their parameters encode the
//! relative differences the paper measures (Fig. 3, 5, 9, 10).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod clock;
pub mod cost;
pub mod device;
pub mod error;
pub mod fault;
pub mod health;
pub mod kernel;
pub mod pool;
pub mod profiles;
pub mod registry;
pub mod sdk;
pub mod sim;
pub mod transform;

pub use buffer::{Buffer, BufferData, BufferId, GenericPayload};
pub use clock::{CostEvent, Lane, SimClock};
pub use cost::{CostClass, CostModel};
pub use device::{Device, DeviceId, DeviceInfo, DeviceKind};
pub use error::DeviceError;
pub use fault::{FaultCounters, FaultPlan};
pub use health::{BreakerState, DeviceHealthRegistry, HealthPolicy, HealthSnapshot};
pub use kernel::{ExecuteSpec, KernelFn, KernelSource, KernelStats};
pub use pool::BufferPool;
pub use profiles::DeviceProfile;
pub use registry::DeviceRegistry;
pub use sdk::{SdkKind, SdkRepr};
pub use sim::SimDevice;
pub use transform::{TransformKind, TransformTable};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::buffer::{Buffer, BufferData, BufferId, GenericPayload};
    pub use crate::clock::{CostEvent, Lane, SimClock};
    pub use crate::cost::{CostClass, CostModel};
    pub use crate::device::{Device, DeviceId, DeviceInfo, DeviceKind};
    pub use crate::error::DeviceError;
    pub use crate::fault::{FaultCounters, FaultPlan};
    pub use crate::health::{BreakerState, DeviceHealthRegistry, HealthPolicy, HealthSnapshot};
    pub use crate::kernel::{ExecuteSpec, KernelFn, KernelSource, KernelStats};
    pub use crate::pool::BufferPool;
    pub use crate::profiles::DeviceProfile;
    pub use crate::registry::DeviceRegistry;
    pub use crate::sdk::{SdkKind, SdkRepr};
    pub use crate::sim::SimDevice;
    pub use crate::transform::{TransformKind, TransformTable};
}
