//! SDK identities and memory-representation tags.

use std::fmt;

/// The SDK family a driver (or kernel implementation) belongs to.
///
/// The paper evaluates OpenCL (on CPU *and* GPU), OpenMP (CPU) and CUDA
/// (GPU); `Custom` lets downstream users plug entirely new SDKs, which is the
/// point of the architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SdkKind {
    /// CUDA-style vendor SDK (GPU).
    Cuda,
    /// OpenCL-style portable wrapper (CPU or GPU).
    OpenCl,
    /// OpenMP-style host parallelism (CPU).
    OpenMp,
    /// Plain host execution (no co-processor).
    Host,
    /// A user-plugged SDK, identified by a small tag.
    Custom(u8),
}

impl SdkKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SdkKind::Cuda => "cuda",
            SdkKind::OpenCl => "opencl",
            SdkKind::OpenMp => "openmp",
            SdkKind::Host => "host",
            SdkKind::Custom(_) => "custom",
        }
    }
}

impl fmt::Display for SdkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdkKind::Custom(tag) => write!(f, "custom#{tag}"),
            other => f.write_str(other.name()),
        }
    }
}

/// How a buffer's memory is *represented* by an SDK or library.
///
/// The paper's Figure 4 shows one GPU memory space interpreted differently by
/// CUDA (`CUdeviceptr`), OpenCL (`cl_mem`), Thrust and Boost.Compute. A naive
/// engine converts between them by copying through the host;
/// `transform_memory` converts the representation **without** moving data
/// when a zero-copy path is registered in the [`crate::transform::TransformTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SdkRepr {
    /// Host-resident vector.
    HostVec,
    /// Raw CUDA device pointer.
    CudaDevPtr,
    /// OpenCL `cl_mem` buffer.
    ClBuffer,
    /// Thrust `device_vector`.
    ThrustDevVec,
    /// Boost.Compute vector.
    BoostComputeVec,
    /// A user-plugged representation.
    Custom(u8),
}

impl SdkRepr {
    /// The representation a given SDK natively produces.
    pub fn native_of(sdk: SdkKind) -> SdkRepr {
        match sdk {
            SdkKind::Cuda => SdkRepr::CudaDevPtr,
            SdkKind::OpenCl => SdkRepr::ClBuffer,
            SdkKind::OpenMp | SdkKind::Host => SdkRepr::HostVec,
            SdkKind::Custom(tag) => SdkRepr::Custom(tag),
        }
    }
}

impl fmt::Display for SdkRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdkRepr::HostVec => f.write_str("host_vec"),
            SdkRepr::CudaDevPtr => f.write_str("cuda_devptr"),
            SdkRepr::ClBuffer => f.write_str("cl_mem"),
            SdkRepr::ThrustDevVec => f.write_str("thrust_device_vector"),
            SdkRepr::BoostComputeVec => f.write_str("boost_compute_vector"),
            SdkRepr::Custom(tag) => write!(f, "custom_repr#{tag}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_reprs() {
        assert_eq!(SdkRepr::native_of(SdkKind::Cuda), SdkRepr::CudaDevPtr);
        assert_eq!(SdkRepr::native_of(SdkKind::OpenCl), SdkRepr::ClBuffer);
        assert_eq!(SdkRepr::native_of(SdkKind::OpenMp), SdkRepr::HostVec);
        assert_eq!(SdkRepr::native_of(SdkKind::Custom(3)), SdkRepr::Custom(3));
    }

    #[test]
    fn display() {
        assert_eq!(SdkKind::Cuda.to_string(), "cuda");
        assert_eq!(SdkKind::Custom(7).to_string(), "custom#7");
        assert_eq!(SdkRepr::ClBuffer.to_string(), "cl_mem");
    }
}
