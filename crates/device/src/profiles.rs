//! Calibrated device/SDK profiles.
//!
//! The paper evaluates two environments (Table II):
//!
//! * **Setup 1** — Intel i7-8700 + GeForce RTX 2080 Ti (11 GiB), CUDA 11.
//! * **Setup 2** — Xeon Gold 5220R + NVIDIA A100 (40 GiB), CUDA 10.1.
//!
//! Each environment exposes four drivers — CUDA (GPU), OpenCL (GPU),
//! OpenCL (CPU), OpenMP (CPU) — whose parameters are calibrated to the
//! paper's relative observations:
//!
//! * CUDA transfer bandwidth above OpenCL's, pinned above pageable (Fig. 3);
//! * OpenCL per-argument launch overhead largest (Fig. 10);
//! * OpenCL hash aggregation degrading with group count, CUDA flat (Fig. 9c);
//! * GPU bitmap-materialization penalty ≈3x (Fig. 9b);
//! * OpenMP slightly below OpenCL on CPU filters (explicit thread
//!   scheduling, Fig. 9a);
//! * pinned allocation costly — more so under OpenCL — which drives the
//!   Q4/OpenCL 4-phase regression (Fig. 11).
//!
//! Experiments that need the *larger-than-memory* regime at laptop scale use
//! [`DeviceProfile::with_memory`] to shrink the device proportionally to the
//! scaled-down dataset (documented per experiment in EXPERIMENTS.md).

use crate::cost::CostModel;
use crate::device::{Device, DeviceId, DeviceInfo, DeviceKind};
use crate::sdk::SdkKind;
use crate::sim::SimDevice;
use crate::transform::TransformTable;

const GIB: u64 = 1024 * 1024 * 1024;

/// A buildable description of a driver+device pair.
#[derive(Clone, Debug)]
pub struct DeviceProfile {
    /// Profile name, e.g. `"cuda@rtx2080ti"`.
    pub name: String,
    /// Device class.
    pub kind: DeviceKind,
    /// SDK the driver speaks.
    pub sdk: SdkKind,
    /// Device memory capacity in bytes.
    pub memory_capacity: u64,
    /// Pinned pool capacity in bytes.
    pub pinned_capacity: u64,
    /// Calibrated cost model.
    pub cost: CostModel,
    /// Whether `prepare_kernel` accepts source kernels.
    pub supports_compilation: bool,
}

impl DeviceProfile {
    /// Builds the simulated device under the given registry id.
    pub fn build(&self, id: DeviceId) -> SimDevice {
        let transforms = match self.kind {
            DeviceKind::Gpu => TransformTable::gpu_default(),
            _ => TransformTable::new(),
        };
        let info = DeviceInfo {
            id,
            name: self.name.clone(),
            kind: self.kind,
            sdk: self.sdk,
            memory_capacity: self.memory_capacity,
            pinned_capacity: self.pinned_capacity,
        };
        let mut dev = SimDevice::new(
            info,
            self.cost.clone(),
            transforms,
            self.supports_compilation,
        );
        dev.initialize().expect("sim device initialize cannot fail");
        dev
    }

    /// Returns the profile with device and pinned capacity overridden —
    /// used to scale the larger-than-memory experiments down with the data.
    pub fn with_memory(mut self, capacity: u64, pinned: u64) -> Self {
        self.memory_capacity = capacity;
        self.pinned_capacity = pinned;
        self
    }

    // ---- Setup 1 (i7-8700 + RTX 2080 Ti) -------------------------------

    /// CUDA driver on the RTX 2080 Ti-class GPU.
    pub fn cuda_rtx2080ti() -> Self {
        DeviceProfile {
            name: "cuda@rtx2080ti".into(),
            kind: DeviceKind::Gpu,
            sdk: SdkKind::Cuda,
            memory_capacity: 11 * GIB,
            pinned_capacity: 4 * GIB,
            supports_compilation: true,
            cost: CostModel {
                h2d_pageable_gibs: 6.2,
                h2d_pinned_gibs: 12.1,
                d2h_pageable_gibs: 6.6,
                d2h_pinned_gibs: 12.8,
                transfer_latency_ns: 9_000.0,
                launch_overhead_ns: 7_500.0,
                per_arg_overhead_ns: 200.0,
                alloc_overhead_ns: 6_000.0,
                pinned_alloc_per_mib_ns: 45_000.0,
                free_overhead_ns: 2_000.0,
                compile_ns: 60e6,
                mem_bandwidth_gibs: 550.0,
                random_access_ns: 1.9,
                atomic_ns: 1.4,
                group_penalty: 0.04,
                build_size_penalty: 0.16,
                probe_penalty: 1.35,
                bitmap_extract_penalty: 3.1,
                transform_zero_copy_ns: 500.0,
                fused_discount: 0.75,
                discrete: true,
            },
        }
    }

    /// OpenCL driver on the RTX 2080 Ti-class GPU.
    pub fn opencl_rtx2080ti() -> Self {
        DeviceProfile {
            name: "opencl@rtx2080ti".into(),
            kind: DeviceKind::Gpu,
            sdk: SdkKind::OpenCl,
            memory_capacity: 11 * GIB,
            pinned_capacity: 4 * GIB,
            supports_compilation: true,
            cost: CostModel {
                h2d_pageable_gibs: 4.6,
                h2d_pinned_gibs: 9.8,
                d2h_pageable_gibs: 5.0,
                d2h_pinned_gibs: 10.4,
                transfer_latency_ns: 16_000.0,
                launch_overhead_ns: 21_000.0,
                per_arg_overhead_ns: 2_600.0,
                alloc_overhead_ns: 9_000.0,
                pinned_alloc_per_mib_ns: 95_000.0,
                free_overhead_ns: 3_000.0,
                compile_ns: 120e6,
                mem_bandwidth_gibs: 510.0,
                random_access_ns: 2.1,
                atomic_ns: 2.3,
                group_penalty: 0.36,
                build_size_penalty: 0.17,
                probe_penalty: 1.0,
                bitmap_extract_penalty: 3.0,
                transform_zero_copy_ns: 800.0,
                fused_discount: 0.75,
                discrete: true,
            },
        }
    }

    /// OpenCL driver on the i7-8700-class CPU.
    pub fn opencl_cpu_i7() -> Self {
        DeviceProfile {
            name: "opencl@i7-8700".into(),
            kind: DeviceKind::Cpu,
            sdk: SdkKind::OpenCl,
            memory_capacity: 32 * GIB,
            pinned_capacity: 8 * GIB,
            supports_compilation: true,
            cost: CostModel {
                h2d_pageable_gibs: 35.0,
                h2d_pinned_gibs: 35.0,
                d2h_pageable_gibs: 35.0,
                d2h_pinned_gibs: 35.0,
                transfer_latency_ns: 2_000.0,
                launch_overhead_ns: 14_000.0,
                per_arg_overhead_ns: 2_200.0,
                alloc_overhead_ns: 3_000.0,
                pinned_alloc_per_mib_ns: 0.0,
                free_overhead_ns: 1_000.0,
                compile_ns: 90e6,
                mem_bandwidth_gibs: 34.0,
                random_access_ns: 7.5,
                atomic_ns: 5.5,
                group_penalty: 0.12,
                build_size_penalty: 0.015,
                probe_penalty: 1.0,
                bitmap_extract_penalty: 1.12,
                transform_zero_copy_ns: 300.0,
                fused_discount: 0.85,
                discrete: false,
            },
        }
    }

    /// OpenMP driver on the i7-8700-class CPU.
    ///
    /// Explicit thread scheduling costs show up as a slightly lower
    /// effective bandwidth and higher launch overhead than the OpenCL CPU
    /// driver (paper Fig. 9a discussion).
    pub fn openmp_cpu_i7() -> Self {
        DeviceProfile {
            name: "openmp@i7-8700".into(),
            kind: DeviceKind::Cpu,
            sdk: SdkKind::OpenMp,
            memory_capacity: 32 * GIB,
            pinned_capacity: 8 * GIB,
            supports_compilation: false,
            cost: CostModel {
                h2d_pageable_gibs: 35.0,
                h2d_pinned_gibs: 35.0,
                d2h_pageable_gibs: 35.0,
                d2h_pinned_gibs: 35.0,
                transfer_latency_ns: 1_500.0,
                launch_overhead_ns: 26_000.0,
                per_arg_overhead_ns: 120.0,
                alloc_overhead_ns: 2_500.0,
                pinned_alloc_per_mib_ns: 0.0,
                free_overhead_ns: 800.0,
                compile_ns: 0.0,
                mem_bandwidth_gibs: 29.5,
                random_access_ns: 7.8,
                atomic_ns: 5.8,
                group_penalty: 0.10,
                build_size_penalty: 0.015,
                probe_penalty: 1.05,
                bitmap_extract_penalty: 1.15,
                transform_zero_copy_ns: 200.0,
                fused_discount: 0.85,
                discrete: false,
            },
        }
    }

    // ---- Setup 2 (Xeon Gold 5220R + A100) ------------------------------

    /// CUDA driver on the A100-class GPU.
    pub fn cuda_a100() -> Self {
        let mut p = Self::cuda_rtx2080ti();
        p.name = "cuda@a100".into();
        p.memory_capacity = 40 * GIB;
        p.pinned_capacity = 8 * GIB;
        p.cost.h2d_pageable_gibs = 9.4;
        p.cost.h2d_pinned_gibs = 23.8;
        p.cost.d2h_pageable_gibs = 10.1;
        p.cost.d2h_pinned_gibs = 24.6;
        p.cost.mem_bandwidth_gibs = 1400.0;
        p.cost.random_access_ns = 1.2;
        p.cost.atomic_ns = 0.9;
        p
    }

    /// OpenCL driver on the A100-class GPU.
    pub fn opencl_a100() -> Self {
        let mut p = Self::opencl_rtx2080ti();
        p.name = "opencl@a100".into();
        p.memory_capacity = 40 * GIB;
        p.pinned_capacity = 8 * GIB;
        p.cost.h2d_pageable_gibs = 6.9;
        p.cost.h2d_pinned_gibs = 19.2;
        p.cost.d2h_pageable_gibs = 7.4;
        p.cost.d2h_pinned_gibs = 20.0;
        p.cost.mem_bandwidth_gibs = 1280.0;
        p.cost.random_access_ns = 1.35;
        p.cost.atomic_ns = 1.4;
        p
    }

    /// OpenCL driver on the Xeon Gold 5220R-class CPU.
    pub fn opencl_cpu_xeon() -> Self {
        let mut p = Self::opencl_cpu_i7();
        p.name = "opencl@xeon5220r".into();
        p.memory_capacity = 96 * GIB;
        p.pinned_capacity = 16 * GIB;
        p.cost.mem_bandwidth_gibs = 105.0;
        p.cost.h2d_pageable_gibs = 105.0;
        p.cost.h2d_pinned_gibs = 105.0;
        p.cost.d2h_pageable_gibs = 105.0;
        p.cost.d2h_pinned_gibs = 105.0;
        p.cost.random_access_ns = 6.8;
        p
    }

    /// OpenMP driver on the Xeon Gold 5220R-class CPU.
    pub fn openmp_cpu_xeon() -> Self {
        let mut p = Self::openmp_cpu_i7();
        p.name = "openmp@xeon5220r".into();
        p.memory_capacity = 96 * GIB;
        p.pinned_capacity = 16 * GIB;
        p.cost.mem_bandwidth_gibs = 92.0;
        p.cost.h2d_pageable_gibs = 92.0;
        p.cost.h2d_pinned_gibs = 92.0;
        p.cost.d2h_pageable_gibs = 92.0;
        p.cost.d2h_pinned_gibs = 92.0;
        p.cost.random_access_ns = 7.0;
        p
    }

    /// A plain host device with negligible modeled costs; useful in tests
    /// and as a fallback target.
    pub fn host() -> Self {
        DeviceProfile {
            name: "host".into(),
            kind: DeviceKind::Cpu,
            sdk: SdkKind::Host,
            memory_capacity: 64 * GIB,
            pinned_capacity: 16 * GIB,
            supports_compilation: false,
            cost: CostModel::default(),
        }
    }

    /// The four drivers of Setup 1, in the paper's presentation order:
    /// OpenCL (CPU), OpenMP, OpenCL (GPU), CUDA.
    pub fn setup1() -> Vec<DeviceProfile> {
        vec![
            Self::opencl_cpu_i7(),
            Self::openmp_cpu_i7(),
            Self::opencl_rtx2080ti(),
            Self::cuda_rtx2080ti(),
        ]
    }

    /// The four drivers of Setup 2.
    pub fn setup2() -> Vec<DeviceProfile> {
        vec![
            Self::opencl_cpu_xeon(),
            Self::openmp_cpu_xeon(),
            Self::opencl_a100(),
            Self::cuda_a100(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostClass;

    #[test]
    fn cuda_faster_than_opencl_transfers() {
        // Fig. 3 shape: CUDA above OpenCL, pinned above pageable, both GPUs.
        for (cuda, opencl) in [
            (
                DeviceProfile::cuda_rtx2080ti(),
                DeviceProfile::opencl_rtx2080ti(),
            ),
            (DeviceProfile::cuda_a100(), DeviceProfile::opencl_a100()),
        ] {
            let size = 256u64 << 20;
            assert!(
                cuda.cost.h2d_effective_gibs(size, false)
                    > opencl.cost.h2d_effective_gibs(size, false)
            );
            assert!(
                cuda.cost.h2d_effective_gibs(size, true)
                    > opencl.cost.h2d_effective_gibs(size, true)
            );
            assert!(
                cuda.cost.h2d_effective_gibs(size, true)
                    > cuda.cost.h2d_effective_gibs(size, false)
            );
        }
    }

    #[test]
    fn opencl_has_largest_arg_overhead() {
        // Fig. 10 shape.
        let ocl = DeviceProfile::opencl_rtx2080ti();
        let cuda = DeviceProfile::cuda_rtx2080ti();
        let omp = DeviceProfile::openmp_cpu_i7();
        assert!(ocl.cost.per_arg_overhead_ns > 10.0 * cuda.cost.per_arg_overhead_ns);
        assert!(ocl.cost.per_arg_overhead_ns > 10.0 * omp.cost.per_arg_overhead_ns);
    }

    #[test]
    fn hash_agg_shapes() {
        // Fig. 9c: OpenCL GPU degrades with group count much more than CUDA.
        let ocl = DeviceProfile::opencl_rtx2080ti().cost;
        let cuda = DeviceProfile::cuda_rtx2080ti().cost;
        let n = 1u64 << 26;
        let ratio = |m: &CostModel| {
            m.kernel_ns(CostClass::HashAgg { groups: 1 << 22 }, n, 3)
                / m.kernel_ns(CostClass::HashAgg { groups: 16 }, n, 3)
        };
        assert!(
            ratio(&ocl) > 1.5 * ratio(&cuda),
            "ocl {} cuda {}",
            ratio(&ocl),
            ratio(&cuda)
        );
    }

    #[test]
    fn cpu_openmp_filter_below_opencl() {
        // Fig. 9a: OpenCL CPU above OpenMP on filters.
        let ocl = DeviceProfile::opencl_cpu_i7().cost;
        let omp = DeviceProfile::openmp_cpu_i7().cost;
        let n = 1u64 << 28;
        assert!(
            ocl.throughput_gips(CostClass::FilterBitmap, n, 3)
                > omp.throughput_gips(CostClass::FilterBitmap, n, 3)
        );
    }

    #[test]
    fn gpu_materialize_penalty() {
        // Fig. 9b: bitmap materialization ~3x slower than the bitmap-only
        // filter on SIMT devices, mild on CPUs.
        let gpu = DeviceProfile::cuda_rtx2080ti().cost;
        let cpu = DeviceProfile::opencl_cpu_i7().cost;
        assert!(gpu.bitmap_extract_penalty > 2.5);
        assert!(cpu.bitmap_extract_penalty < 1.5);
    }

    #[test]
    fn builds_and_initializes() {
        for p in DeviceProfile::setup1()
            .into_iter()
            .chain(DeviceProfile::setup2())
        {
            let dev = p.build(DeviceId(0));
            assert_eq!(dev.info().memory_capacity, dev.pool().capacity());
        }
    }

    #[test]
    fn with_memory_overrides() {
        let p = DeviceProfile::cuda_rtx2080ti().with_memory(1 << 28, 1 << 26);
        assert_eq!(p.memory_capacity, 1 << 28);
        assert_eq!(p.pinned_capacity, 1 << 26);
    }

    #[test]
    fn openmp_has_no_jit() {
        assert!(!DeviceProfile::openmp_cpu_i7().supports_compilation);
        assert!(DeviceProfile::opencl_cpu_i7().supports_compilation);
        assert!(DeviceProfile::cuda_rtx2080ti().supports_compilation);
    }
}
