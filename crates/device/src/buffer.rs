//! Device-resident buffers.
//!
//! Buffers are *typed* (the I/O semantics of the task layer map onto payload
//! kinds) and tagged with the [`SdkRepr`] they are currently interpreted as.
//! In this simulation the payload physically lives in host memory, but it is
//! owned by the device's bounded pool and can only be read back through
//! `retrieve_data` — the runtime never reaches around the interface.

use crate::sdk::SdkRepr;
use std::any::Any;
use std::fmt;

/// Identifier for a buffer within one device's pool.
///
/// The paper's listings use a `short alias`; a `u64` newtype plays the same
/// role without collision risk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub u64);

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf#{}", self.0)
    }
}

/// A device-resident opaque structure (the paper's `HASH_TABLE` and
/// `GENERIC` I/O semantics — hash tables, custom tree indexes, …).
///
/// The device layer only needs to know its size (for pool accounting) and
/// how to clone it; the task layer downcasts through `as_any` to operate on
/// the concrete structure.
pub trait GenericPayload: Send + Sync + fmt::Debug {
    /// Bytes the structure occupies in device memory.
    fn byte_len(&self) -> u64;
    /// Logical element count (entries for a hash table).
    fn len(&self) -> usize;
    /// True when the structure holds no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Clones the structure behind the trait object.
    fn clone_box(&self) -> Box<dyn GenericPayload>;
    /// Downcasting support.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Typed buffer payload.
///
/// Kernels operate on these payloads directly, which keeps the whole engine
/// free of `unsafe` byte-casting while preserving per-element byte accounting
/// for the cost model.
#[derive(Debug)]
pub enum BufferData {
    /// 64-bit integers (`NUMERIC` semantics; 32-bit inputs are widened on
    /// placement, with the *transfer* still billed at their true width).
    I64(Vec<i64>),
    /// 64-bit floats (`NUMERIC`).
    F64(Vec<f64>),
    /// 32-bit positions (`POSITION` semantics).
    U32(Vec<u32>),
    /// Packed bitmap words (`BITMAP` semantics).
    BitWords(Vec<u64>),
    /// Raw bytes (`GENERIC` semantics, e.g. serialized custom structures).
    Raw(Vec<u8>),
    /// An opaque device-resident structure (`HASH_TABLE`/`GENERIC`).
    Generic(Box<dyn GenericPayload>),
}

impl Clone for BufferData {
    fn clone(&self) -> Self {
        match self {
            BufferData::I64(v) => BufferData::I64(v.clone()),
            BufferData::F64(v) => BufferData::F64(v.clone()),
            BufferData::U32(v) => BufferData::U32(v.clone()),
            BufferData::BitWords(v) => BufferData::BitWords(v.clone()),
            BufferData::Raw(v) => BufferData::Raw(v.clone()),
            BufferData::Generic(g) => BufferData::Generic(g.clone_box()),
        }
    }
}

impl PartialEq for BufferData {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (BufferData::I64(a), BufferData::I64(b)) => a == b,
            (BufferData::F64(a), BufferData::F64(b)) => a == b,
            (BufferData::U32(a), BufferData::U32(b)) => a == b,
            (BufferData::BitWords(a), BufferData::BitWords(b)) => a == b,
            (BufferData::Raw(a), BufferData::Raw(b)) => a == b,
            // Opaque structures are never considered equal.
            _ => false,
        }
    }
}

impl BufferData {
    /// Number of logical elements.
    pub fn len(&self) -> usize {
        match self {
            BufferData::I64(v) => v.len(),
            BufferData::F64(v) => v.len(),
            BufferData::U32(v) => v.len(),
            BufferData::BitWords(v) => v.len(),
            BufferData::Raw(v) => v.len(),
            BufferData::Generic(g) => g.len(),
        }
    }

    /// True when the payload holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes occupied in device memory.
    pub fn byte_len(&self) -> u64 {
        match self {
            BufferData::I64(v) => (v.len() * 8) as u64,
            BufferData::F64(v) => (v.len() * 8) as u64,
            BufferData::U32(v) => (v.len() * 4) as u64,
            BufferData::BitWords(v) => (v.len() * 8) as u64,
            BufferData::Raw(v) => v.len() as u64,
            BufferData::Generic(g) => g.byte_len(),
        }
    }

    /// Short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            BufferData::I64(_) => "i64",
            BufferData::F64(_) => "f64",
            BufferData::U32(_) => "u32",
            BufferData::BitWords(_) => "bitwords",
            BufferData::Raw(_) => "raw",
            BufferData::Generic(_) => "generic",
        }
    }

    /// An empty payload of the same kind with reserved capacity.
    ///
    /// `Generic` payloads clone instead (an "empty like" of an opaque
    /// structure is not generally constructible).
    pub fn empty_like(&self, capacity: usize) -> BufferData {
        match self {
            BufferData::I64(_) => BufferData::I64(Vec::with_capacity(capacity)),
            BufferData::F64(_) => BufferData::F64(Vec::with_capacity(capacity)),
            BufferData::U32(_) => BufferData::U32(Vec::with_capacity(capacity)),
            BufferData::BitWords(_) => BufferData::BitWords(Vec::with_capacity(capacity)),
            BufferData::Raw(_) => BufferData::Raw(Vec::with_capacity(capacity)),
            BufferData::Generic(g) => BufferData::Generic(g.clone_box()),
        }
    }

    /// Copies elements `offset..offset+len` into a new payload.
    ///
    /// `Generic` payloads do not support slicing; they are cloned whole
    /// (chunking a hash table has no meaning — the runtime never does it).
    pub fn slice(&self, offset: usize, len: usize) -> BufferData {
        let end = (offset + len).min(self.len());
        let offset = offset.min(end);
        match self {
            BufferData::I64(v) => BufferData::I64(v[offset..end].to_vec()),
            BufferData::F64(v) => BufferData::F64(v[offset..end].to_vec()),
            BufferData::U32(v) => BufferData::U32(v[offset..end].to_vec()),
            BufferData::BitWords(v) => BufferData::BitWords(v[offset..end].to_vec()),
            BufferData::Raw(v) => BufferData::Raw(v[offset..end].to_vec()),
            BufferData::Generic(g) => BufferData::Generic(g.clone_box()),
        }
    }

    /// Borrows the payload as `i64`s.
    pub fn as_i64(&self) -> Option<&Vec<i64>> {
        match self {
            BufferData::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the payload as `f64`s.
    pub fn as_f64(&self) -> Option<&Vec<f64>> {
        match self {
            BufferData::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the payload as positions.
    pub fn as_u32(&self) -> Option<&Vec<u32>> {
        match self {
            BufferData::U32(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the payload as bitmap words.
    pub fn as_bitwords(&self) -> Option<&Vec<u64>> {
        match self {
            BufferData::BitWords(v) => Some(v),
            _ => None,
        }
    }

    /// Downcasts a generic payload to a concrete type.
    pub fn as_generic<T: 'static>(&self) -> Option<&T> {
        match self {
            BufferData::Generic(g) => g.as_any().downcast_ref::<T>(),
            _ => None,
        }
    }

    /// Mutably downcasts a generic payload to a concrete type.
    pub fn as_generic_mut<T: 'static>(&mut self) -> Option<&mut T> {
        match self {
            BufferData::Generic(g) => g.as_any_mut().downcast_mut::<T>(),
            _ => None,
        }
    }

    /// Content checksum (FNV-1a over the element bytes).
    ///
    /// The transfer-integrity protocol compares this on both ends of a
    /// host↔device copy: the hub checksums what it sent, the device echoes
    /// the checksum of what it stored, and a mismatch triggers a retransmit.
    /// `Generic` payloads hash a structural marker (kind, element count,
    /// byte length) only — opaque structures are built *on* the device, never
    /// shipped over the simulated bus, so their content never transits.
    pub fn checksum(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |b: u8| h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        match self {
            BufferData::I64(v) => {
                for x in v {
                    x.to_le_bytes().iter().for_each(|&b| eat(b));
                }
            }
            BufferData::F64(v) => {
                for x in v {
                    x.to_le_bytes().iter().for_each(|&b| eat(b));
                }
            }
            BufferData::U32(v) => {
                for x in v {
                    x.to_le_bytes().iter().for_each(|&b| eat(b));
                }
            }
            BufferData::BitWords(v) => {
                for x in v {
                    x.to_le_bytes().iter().for_each(|&b| eat(b));
                }
            }
            BufferData::Raw(v) => v.iter().for_each(|&b| eat(b)),
            BufferData::Generic(g) => {
                for &b in b"generic" {
                    eat(b);
                }
                (g.len() as u64).to_le_bytes().iter().for_each(|&b| eat(b));
                g.byte_len().to_le_bytes().iter().for_each(|&b| eat(b));
            }
        }
        h
    }

    /// Flips the low bit of the element at `element % len` (fault injection:
    /// a single-bit DMA error). Returns `false` when there is nothing to
    /// corrupt (empty or opaque payload), so the injector can count only
    /// flips that actually happened.
    pub fn flip_bit(&mut self, element: usize) -> bool {
        if self.is_empty() {
            return false;
        }
        let i = element % self.len();
        match self {
            BufferData::I64(v) => v[i] ^= 1,
            BufferData::F64(v) => v[i] = f64::from_bits(v[i].to_bits() ^ 1),
            BufferData::U32(v) => v[i] ^= 1,
            BufferData::BitWords(v) => v[i] ^= 1,
            BufferData::Raw(v) => v[i] ^= 1,
            BufferData::Generic(_) => return false,
        }
        true
    }
}

/// A buffer held by a device pool.
#[derive(Clone, Debug)]
pub struct Buffer {
    /// Current payload.
    pub data: BufferData,
    /// SDK representation this buffer is currently tagged as.
    pub repr: SdkRepr,
    /// Whether the buffer lives in the pinned (host-accessible) pool.
    pub pinned: bool,
    /// Bytes *reserved* in the pool for this buffer.
    ///
    /// `prepare_memory`/`add_pinned_memory` reserve a fixed region up front
    /// (as a real device allocation does); the payload may be smaller. Pool
    /// accounting always uses `reserved_bytes.max(data.byte_len())`.
    pub reserved_bytes: u64,
}

impl Buffer {
    /// Bytes this buffer occupies in pool accounting.
    pub fn footprint(&self) -> u64 {
        self.reserved_bytes.max(self.data.byte_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_lengths() {
        assert_eq!(BufferData::I64(vec![1, 2]).byte_len(), 16);
        assert_eq!(BufferData::U32(vec![1, 2, 3]).byte_len(), 12);
        assert_eq!(BufferData::BitWords(vec![0]).byte_len(), 8);
        assert_eq!(BufferData::Raw(vec![0; 5]).byte_len(), 5);
        assert_eq!(BufferData::F64(vec![]).byte_len(), 0);
    }

    #[test]
    fn slicing() {
        let d = BufferData::I64((0..10).collect());
        assert_eq!(d.slice(8, 5), BufferData::I64(vec![8, 9]));
        assert_eq!(d.slice(20, 5).len(), 0);
    }

    #[test]
    fn empty_like_preserves_kind() {
        let d = BufferData::U32(vec![1]);
        let e = d.empty_like(10);
        assert_eq!(e.kind(), "u32");
        assert!(e.is_empty());
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let clean = BufferData::I64((0..64).collect());
        let base = clean.checksum();
        assert_eq!(base, clean.clone().checksum(), "checksum is pure");
        let mut dirty = clean.clone();
        assert!(dirty.flip_bit(13));
        assert_ne!(dirty.checksum(), base);
        assert!(dirty.flip_bit(13), "flip is an involution");
        assert_eq!(dirty.checksum(), base);
        // Out-of-range element indexes wrap instead of panicking.
        let mut d2 = clean.clone();
        assert!(d2.flip_bit(64 + 13));
        assert_eq!(d2, dirty_at(&clean, 13));
    }

    fn dirty_at(d: &BufferData, i: usize) -> BufferData {
        let mut c = d.clone();
        c.flip_bit(i);
        c
    }

    #[test]
    fn checksums_differ_across_kinds_and_contents() {
        let a = BufferData::I64(vec![1, 2, 3]).checksum();
        let b = BufferData::I64(vec![1, 2, 4]).checksum();
        let c = BufferData::U32(vec![1, 2, 3]).checksum();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(
            BufferData::Raw(vec![]).checksum(),
            BufferData::Raw(Vec::new()).checksum()
        );
    }

    #[test]
    fn empty_payloads_cannot_be_corrupted() {
        assert!(!BufferData::I64(vec![]).flip_bit(0));
        let mut f = BufferData::F64(vec![0.5]);
        assert!(f.flip_bit(0));
        assert_ne!(f, BufferData::F64(vec![0.5]));
    }

    #[test]
    fn footprint_uses_max() {
        let b = Buffer {
            data: BufferData::I64(vec![1, 2, 3]),
            repr: SdkRepr::HostVec,
            pinned: false,
            reserved_bytes: 100,
        };
        assert_eq!(b.footprint(), 100);
        let b2 = Buffer {
            data: BufferData::I64(vec![0; 100]),
            repr: SdkRepr::HostVec,
            pinned: false,
            reserved_bytes: 8,
        };
        assert_eq!(b2.footprint(), 800);
    }
}
