//! # adamant-sched
//!
//! The **multi-query scheduler** above `adamant-core`'s executor: many
//! concurrent queries from multiple tenants share one engine's devices on
//! the simulated timeline, the scenario a co-processor-accelerated DBMS
//! actually serves (the paper evaluates queries one at a time; this layer
//! is the reproduction's extension for concurrent workloads).
//!
//! Three mechanisms compose:
//!
//! * **Admission control** ([`estimate`], [`ledger`]) — every query gets a
//!   pre-execution device-memory footprint (analytic for TPC-H via
//!   `adamant-tpch`, a primitive-graph walk otherwise) and is admitted only
//!   when that reservation fits the target device's unreserved pool. An
//!   admitted query cannot be OOM-killed by a *later* admission.
//! * **Priority + fair queuing** ([`queue`]) — per-tenant weighted FIFO
//!   queues with multiplicative aging (no starvation) and
//!   earliest-deadline-first among equal priorities; queries whose
//!   remaining deadline budget cannot cover the cheapest modeled placement
//!   are shed before wasting device time.
//! * **Device-time sharing** ([`scheduler`]) — admitted queries' recorded
//!   per-chunk time slices interleave on the shared virtual timeline under
//!   weighted fair queuing (`adamant-core`'s `WfqClock`), so a 2:1-weight
//!   tenant observes ≈2× the device time under contention while results
//!   stay reference-exact. With a [`PreemptPolicy`] enabled, tight-deadline
//!   (or starvation-aged) queries suspend lower-urgency running queries at
//!   chunk granularity and the suspended tenants catch up afterwards; late
//!   completions are flagged (`missed_deadline`) and counted, never silent.
//!
//! Entry points: build a [`QueryScheduler`] over an `Executor` (or via the
//! facade's `Adamant::session()`), register tenants, [`QueryScheduler::submit`]
//! [`QuerySpec`]s, then [`QueryScheduler::run_all`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod estimate;
pub mod ledger;
pub mod queue;
pub mod scheduler;
pub mod stats;

pub use estimate::estimate_footprint_bytes;
pub use ledger::ReservationLedger;
pub use queue::AdmissionQueues;
pub use scheduler::{
    PreemptPolicy, QueryOutcome, QueryScheduler, QuerySpec, QueryTicket, SchedReport, ShedReason,
};
pub use stats::{SchedulerStats, TenantStats};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::estimate::estimate_footprint_bytes;
    pub use crate::scheduler::{
        PreemptPolicy, QueryOutcome, QueryScheduler, QuerySpec, QueryTicket, SchedReport,
        ShedReason,
    };
    pub use crate::stats::{SchedulerStats, TenantStats};
}
