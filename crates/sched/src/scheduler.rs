//! The multi-query scheduler: admission control, fair queuing, and
//! device-time sharing over one [`Executor`]'s simulated timeline.
//!
//! # How concurrency works on a simulated timeline
//!
//! Queries produce *exact* results, so each admitted query really executes
//! (sequentially, at admission time) — but its modeled device time is
//! captured as per-chunk slices (`ExecutionStats::slice_ns`) rather than
//! charged to the shared clock immediately. The scheduler then interleaves
//! the slices of all admitted queries under weighted fair queuing, which
//! reconstructs the timeline a chunk-granular time-sliced device would
//! have produced: results stay reference-exact, while waiting, fair-share
//! ratios and makespans reflect genuine contention.
//!
//! Admission is gated by the reservation ledger: a query is admitted only
//! when its estimated footprint fits the target device's unreserved
//! capacity, so concurrent queries cannot OOM each other (ISSUE 3's
//! admission-control requirement). Queued queries age multiplicatively so
//! no tenant starves, with earliest-deadline-first among equal priorities.
//!
//! With a [`PreemptPolicy`] enabled, the slice-serving loop additionally
//! preempts: when an active query turns *urgent* (its deadline slack has
//! shrunk below the policy's `slack_ns`, or it was admitted after crossing
//! the starvation horizon), every lower-urgency active query is suspended —
//! remaining slices parked, tenant WFQ pass frozen — until the urgent
//! slices drain, after which the suspended queries resume and catch up the
//! service they were denied. Either way a completed query whose finish time
//! exceeded its own deadline is reported `Completed { missed_deadline:
//! true }` and counted in `SchedulerStats::deadline_misses`, never as
//! silent success.

use crate::estimate::estimate_footprint_bytes;
use crate::ledger::ReservationLedger;
use crate::queue::{AdmissionQueues, QueuedEntry};
use crate::stats::SchedulerStats;
use adamant_core::error::{ExecError, Result};
use adamant_core::executor::{CancelToken, Executor, QueryInputs};
use adamant_core::graph::PrimitiveGraph;
use adamant_core::models::ExecutionModel;
use adamant_core::result::QueryOutput;
use adamant_core::stats::ExecutionStats;
use adamant_core::timeline::WfqClock;
use adamant_device::device::DeviceId;
use adamant_plan::PlacementPolicy;
use std::collections::{BTreeMap, VecDeque};

/// Default aging horizon: waiting this many modeled ns doubles a queued
/// query's effective weight (≈10 ms of simulated time).
pub const DEFAULT_AGE_BOOST_NS: f64 = 1e7;

/// Scheduler-level preemption policy: whether (and how eagerly) a
/// tight-deadline query — or a waiter that crossed the starvation horizon —
/// may suspend lower-urgency running queries so its slices drain first.
///
/// Suspension parks a query's remaining `slice_ns` without losing fairness
/// accounting: suspended time is not charged as `run_ns`, the suspended
/// tenant's WFQ pass stays frozen (`WfqClock::suspend`), and on resume the
/// tenant catches up exactly the service it was denied. Disabled by
/// default, preserving pure WFQ interleaving.
#[derive(Clone, Copy, Debug)]
pub struct PreemptPolicy {
    /// Master switch; `false` means never suspend anyone.
    pub enabled: bool,
    /// Urgency headroom: a deadline query turns urgent once
    /// `deadline − now − remaining_work ≤ slack_ns`. Larger slack preempts
    /// earlier; `0.0` preempts only when any further interleaving would
    /// push the query past its deadline.
    pub slack_ns: f64,
    /// A query admitted after waiting more than `starve_multiplier ×` the
    /// queue's aging horizon is treated as urgent too (the aged-waiter
    /// trigger); never fires when aging is disabled.
    pub starve_multiplier: f64,
}

impl Default for PreemptPolicy {
    fn default() -> Self {
        PreemptPolicy {
            enabled: false,
            slack_ns: 0.0,
            starve_multiplier: 4.0,
        }
    }
}

impl PreemptPolicy {
    /// Preemption enabled with `slack_ns` of urgency headroom and the
    /// default starvation horizon.
    pub fn with_slack_ns(slack_ns: f64) -> Self {
        PreemptPolicy {
            enabled: true,
            slack_ns: slack_ns.max(0.0),
            ..PreemptPolicy::default()
        }
    }
}

/// One query submission: the plan, its inputs, and per-query scheduling
/// knobs.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    graph: PrimitiveGraph,
    inputs: QueryInputs,
    model: ExecutionModel,
    footprint_bytes: Option<u64>,
    deadline_ns: Option<f64>,
    pin_device: Option<DeviceId>,
    policy: Option<PlacementPolicy>,
    cancel: CancelToken,
}

impl QuerySpec {
    /// A query running `graph` over `inputs` under `model`, with the
    /// scheduler free to place it and no deadline.
    pub fn new(graph: PrimitiveGraph, inputs: QueryInputs, model: ExecutionModel) -> Self {
        QuerySpec {
            graph,
            inputs,
            model,
            footprint_bytes: None,
            deadline_ns: None,
            pin_device: None,
            policy: None,
            cancel: CancelToken::new(),
        }
    }

    /// Overrides the admission footprint estimate (e.g. with
    /// `TpchQuery::analytic_footprint_bytes`). Without this the scheduler
    /// walks the primitive graph ([`estimate_footprint_bytes`]).
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        self.footprint_bytes = Some(bytes);
        self
    }

    /// Sets a modeled-ns budget measured from *submission*: time spent
    /// queued counts against it, and a query whose remaining budget cannot
    /// cover the cheapest modeled placement is shed instead of admitted.
    pub fn with_deadline_ns(mut self, deadline_ns: f64) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Pins execution to one device (admission still checks its capacity).
    pub fn pin_device(mut self, device: DeviceId) -> Self {
        self.pin_device = Some(device);
        self
    }

    /// Places via an `adamant-plan` policy instead of the scheduler's
    /// default cheapest-feasible-device rule. Deadlines are honored through
    /// [`PlacementPolicy::choose_within_budget`].
    pub fn with_policy(mut self, policy: PlacementPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Attaches a cancellation token: cancelling before admission sheds the
    /// query; cancelling mid-run unwinds it like any executor cancel.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

/// Handle identifying a submitted query in the [`SchedReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryTicket(u64);

impl QueryTicket {
    /// The raw ticket number.
    pub fn id(self) -> u64 {
        self.0
    }
}

/// Why a query was shed — typed so callers can react programmatically
/// (retry, re-queue, alert) instead of parsing reason strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// Its cancel token fired while it was still queued.
    Cancelled,
    /// Its deadline expired while it was still queued.
    DeadlineExpired,
    /// Its remaining budget was below the cheapest modeled placement.
    BudgetExceeded,
    /// It was admitted against capacity a permanent device death took
    /// away, and no survivor could absorb its reservation.
    CapacityLost,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShedReason::Cancelled => "cancelled while queued",
            ShedReason::DeadlineExpired => "deadline expired while queued",
            ShedReason::BudgetExceeded => "remaining budget below cheapest modeled placement",
            ShedReason::CapacityLost => "admitted capacity lost to device death",
        })
    }
}

/// What happened to one submitted query.
#[derive(Debug)]
pub enum QueryOutcome {
    /// Ran to completion with exact outputs.
    Completed {
        /// The query's outputs (reference-exact).
        output: QueryOutput,
        /// Per-run executor statistics.
        stats: Box<ExecutionStats>,
        /// Modeled ns spent queued before admission.
        wait_ns: f64,
        /// Virtual time on the shared timeline when the query finished.
        finish_ns: f64,
        /// True when the query had a deadline and `finish_ns` exceeded it:
        /// admitted in time, but WFQ interleaving pushed it past its budget.
        /// Counted in [`crate::SchedulerStats::deadline_misses`] — a late
        /// completion is never reported as silent success.
        missed_deadline: bool,
    },
    /// Admitted but failed during execution.
    Failed {
        /// The executor error.
        error: ExecError,
    },
    /// Shed: deadline unmeetable, cancelled while queued, or its admitted
    /// capacity vanished with a dead device and no survivor could take it.
    Shed {
        /// Why it was shed.
        reason: ShedReason,
    },
    /// Rejected: its footprint exceeds every device, so no amount of
    /// waiting could admit it.
    Rejected {
        /// Why it was rejected.
        reason: String,
    },
}

/// Result of one [`QueryScheduler::run_all`] drain: per-ticket outcomes
/// plus a snapshot of the cumulative scheduler statistics.
#[derive(Debug)]
pub struct SchedReport {
    outcomes: BTreeMap<u64, QueryOutcome>,
    stats: SchedulerStats,
}

impl SchedReport {
    /// The outcome for one ticket (`None` if it was not drained by this
    /// call).
    pub fn outcome(&self, ticket: QueryTicket) -> Option<&QueryOutcome> {
        self.outcomes.get(&ticket.0)
    }

    /// Removes and returns the outcome for one ticket, handing the caller
    /// ownership of the output and statistics (a serving layer returning
    /// results to a client wants to move them, not clone them).
    pub fn take_outcome(&mut self, ticket: QueryTicket) -> Option<QueryOutcome> {
        self.outcomes.remove(&ticket.0)
    }

    /// The completed output for one ticket, or `None` for any other
    /// outcome.
    pub fn output(&self, ticket: QueryTicket) -> Option<&QueryOutput> {
        match self.outcomes.get(&ticket.0) {
            Some(QueryOutcome::Completed { output, .. }) => Some(output),
            _ => None,
        }
    }

    /// Modeled queue wait for one completed ticket.
    pub fn wait_ns(&self, ticket: QueryTicket) -> Option<f64> {
        match self.outcomes.get(&ticket.0) {
            Some(QueryOutcome::Completed { wait_ns, .. }) => Some(*wait_ns),
            _ => None,
        }
    }

    /// Whether a completed ticket finished past its own deadline (`None`
    /// for any non-completed outcome).
    pub fn missed_deadline(&self, ticket: QueryTicket) -> Option<bool> {
        match self.outcomes.get(&ticket.0) {
            Some(QueryOutcome::Completed {
                missed_deadline, ..
            }) => Some(*missed_deadline),
            _ => None,
        }
    }

    /// Virtual finish time for one completed ticket.
    pub fn finish_ns(&self, ticket: QueryTicket) -> Option<f64> {
        match self.outcomes.get(&ticket.0) {
            Some(QueryOutcome::Completed { finish_ns, .. }) => Some(*finish_ns),
            _ => None,
        }
    }

    /// All outcomes, keyed by raw ticket number.
    pub fn outcomes(&self) -> &BTreeMap<u64, QueryOutcome> {
        &self.outcomes
    }

    /// Scheduler statistics snapshot (cumulative across `run_all` calls).
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }
}

/// An admitted query replaying its recorded slices on the shared timeline.
struct Active {
    ticket: u64,
    tenant: String,
    device: DeviceId,
    admit_seq: u64,
    slices: VecDeque<f64>,
    /// Cached `slices` sum, decremented as slices serve (urgency checks
    /// run every loop iteration; re-summing would be quadratic).
    remaining_ns: f64,
    /// Absolute deadline on the shared timeline, if any.
    deadline_vt: Option<f64>,
    /// Parked by preemption: slices stay queued, no service, no `run_ns`.
    suspended: bool,
    /// Admitted after crossing the starvation horizon: urgent for life.
    aged_urgent: bool,
    output: QueryOutput,
    stats: Box<ExecutionStats>,
    wait_ns: f64,
}

impl Active {
    /// Urgency at `now_ns`: an aged waiter, or a deadline query whose slack
    /// (`deadline − now − remaining work`) has shrunk to `slack_ns` or
    /// less. Monotone: serving the query itself keeps its slack constant,
    /// serving anyone else shrinks it — once urgent, always urgent.
    fn urgent(&self, now_ns: f64, slack_ns: f64) -> bool {
        self.aged_urgent
            || self
                .deadline_vt
                .is_some_and(|d| d - now_ns - self.remaining_ns <= slack_ns)
    }
}

/// Schedules many queries over one executor: admission control against the
/// device pools, weighted fair queuing across tenants, and chunk-granular
/// device-time sharing on the simulated timeline.
///
/// Borrow it from the facade (`Adamant::session()`) or build one directly
/// over any [`Executor`]. Dropping the scheduler drops any queries not yet
/// drained by [`QueryScheduler::run_all`].
pub struct QueryScheduler<'e> {
    executor: &'e mut Executor,
    queues: AdmissionQueues,
    ledger: ReservationLedger,
    wfq: WfqClock,
    streams: BTreeMap<String, usize>,
    pending: BTreeMap<u64, QuerySpec>,
    next_ticket: u64,
    next_seq: u64,
    now_ns: f64,
    preempt: PreemptPolicy,
    stats: SchedulerStats,
}

impl<'e> QueryScheduler<'e> {
    /// Creates a scheduler over `executor` with the default aging horizon.
    pub fn new(executor: &'e mut Executor) -> Self {
        QueryScheduler::with_age_boost(executor, DEFAULT_AGE_BOOST_NS)
    }

    /// Creates a scheduler with a custom aging horizon (modeled ns of
    /// waiting that doubles a queued query's effective weight).
    pub fn with_age_boost(executor: &'e mut Executor, age_boost_ns: f64) -> Self {
        QueryScheduler {
            executor,
            queues: AdmissionQueues::new(age_boost_ns),
            ledger: ReservationLedger::new(),
            wfq: WfqClock::new(),
            streams: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_ticket: 1,
            next_seq: 1,
            now_ns: 0.0,
            preempt: PreemptPolicy::default(),
            stats: SchedulerStats::default(),
        }
    }

    /// Sets the preemption policy for subsequent [`QueryScheduler::run_all`]
    /// calls (see [`PreemptPolicy`]; disabled by default).
    pub fn preemption(&mut self, policy: PreemptPolicy) -> &mut Self {
        self.preempt = policy;
        self
    }

    /// The current preemption policy.
    pub fn preempt_policy(&self) -> PreemptPolicy {
        self.preempt
    }

    /// Reservations currently outstanding in the admission ledger.
    pub fn outstanding_reservations(&self) -> usize {
        self.ledger.outstanding()
    }

    /// Registers `name` with a fair-share `weight`. Unregistered tenants
    /// that submit get weight 1.0. Re-registering updates the weight for
    /// future scheduling decisions.
    pub fn tenant(&mut self, name: &str, weight: f64) -> &mut Self {
        self.queues.register(name, weight);
        self.ensure_stream(name, weight);
        let entry = self.stats.tenants.entry(name.to_string()).or_default();
        entry.weight = weight.max(1e-9);
        self
    }

    /// Enqueues `spec` for `tenant`; the query runs on the next
    /// [`QueryScheduler::run_all`].
    pub fn submit(&mut self, tenant: &str, spec: QuerySpec) -> QueryTicket {
        if !self.queues.tenants().contains(&tenant.to_string()) {
            self.tenant(tenant, 1.0);
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let deadline_vt = spec.deadline_ns.map(|d| self.now_ns + d);
        let depth = self.queues.push(
            tenant,
            QueuedEntry {
                ticket,
                seq,
                submit_vt: self.now_ns,
                deadline_vt,
            },
        );
        self.pending.insert(ticket, spec);
        let t = self.stats.tenants.entry(tenant.to_string()).or_default();
        t.submitted += 1;
        t.max_queue_depth = t.max_queue_depth.max(depth);
        QueryTicket(ticket)
    }

    /// Current virtual time on the shared timeline (modeled ns).
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Cumulative scheduler statistics.
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }

    /// Drains every submitted query: admits under the reservation ledger,
    /// interleaves admitted queries' device time under weighted fair
    /// queuing, and returns per-ticket outcomes. Deterministic for a given
    /// submission order and executor state.
    pub fn run_all(&mut self) -> SchedReport {
        let mut outcomes: BTreeMap<u64, QueryOutcome> = BTreeMap::new();
        let mut active: Vec<Active> = Vec::new();
        let mut admit_seq = 0u64;

        loop {
            // Admission: keep admitting the best candidate until the gate
            // holds (reservation doesn't fit) or the queues drain.
            let mut gate_held = false;
            while !gate_held {
                let Some((tenant, entry)) = self.queues.peek_candidate(self.now_ns) else {
                    break;
                };
                match self.try_admit(&tenant, &entry, &active, &mut outcomes) {
                    Admit::Started(mut act) => {
                        act.admit_seq = admit_seq;
                        admit_seq += 1;
                        let stream = self.ensure_stream(&tenant, self.queues.weight(&tenant));
                        self.wfq.activate(stream);
                        active.push(*act);
                    }
                    Admit::Resolved => {}
                    Admit::Hold => {
                        // Highest-priority candidate can't fit until a
                        // running query frees its reservation; serving a
                        // slice is the only way forward.
                        gate_held = true;
                    }
                }
                // The run inside try_admit may have lost a device for good
                // (the executor unplugs it on the first `Gone`). Reconcile
                // the ledger and the active set with the new membership
                // before the next fits-check trusts stale capacity.
                self.reconcile_membership(&mut active, &mut outcomes);
            }

            if active.is_empty() {
                if self.queues.is_empty() {
                    break;
                }
                // Nothing is running, yet the head candidate still can't
                // reserve: no future completion can free memory for it.
                if let Some((tenant, entry)) = self.queues.peek_candidate(self.now_ns) {
                    self.queues.pop(&tenant);
                    self.pending.remove(&entry.ticket);
                    self.reject(
                        &tenant,
                        entry.ticket,
                        "footprint cannot be reserved on an idle engine",
                        &mut outcomes,
                    );
                }
                continue;
            }

            // Preemption: (re)classify urgency at the current virtual time —
            // suspend lower-urgency queries while any urgent query is
            // active, resume them once the urgent work drains — and mirror
            // per-query suspension onto the tenants' WFQ streams.
            if self.preempt.enabled {
                self.apply_preemption(&mut active);
            }

            // Serve one slice to the WFQ-chosen tenant's next eligible
            // admitted query (suspended streams are skipped by the clock).
            let Some(stream) = self.wfq.next_stream() else {
                debug_assert!(false, "active queries but no servable WFQ stream");
                break;
            };
            let tenant = self
                .streams
                .iter()
                .find(|(_, &s)| s == stream)
                .map(|(t, _)| t.clone())
                .expect("stream registered");
            let contended = {
                let mut names: Vec<&str> = active.iter().map(|a| a.tenant.as_str()).collect();
                names.sort_unstable();
                names.dedup();
                names.len() >= 2
            };
            let idx = if self.preempt.enabled {
                // Within the chosen tenant: non-suspended queries only,
                // earliest deadline first, then admission order — so when a
                // tenant holds both an urgent and a parked query, the
                // urgent one's slices drain first.
                active
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.tenant == tenant && !a.suspended)
                    .min_by(|(_, x), (_, y)| {
                        let dx = x.deadline_vt.unwrap_or(f64::INFINITY);
                        let dy = y.deadline_vt.unwrap_or(f64::INFINITY);
                        dx.total_cmp(&dy).then(x.admit_seq.cmp(&y.admit_seq))
                    })
                    .map(|(i, _)| i)
                    .expect("servable stream has a non-suspended query")
            } else {
                active
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.tenant == tenant)
                    .min_by_key(|(_, a)| a.admit_seq)
                    .map(|(i, _)| i)
                    .expect("active stream has an active query")
            };
            let slice = active[idx].slices.pop_front().unwrap_or(0.0);
            active[idx].remaining_ns = (active[idx].remaining_ns - slice).max(0.0);
            self.now_ns += slice;
            self.wfq.charge(stream, slice);
            self.stats.slices += 1;
            self.stats.makespan_ns = self.now_ns;
            {
                let t = self.stats.tenants.entry(tenant.clone()).or_default();
                t.run_ns += slice;
                if contended {
                    t.contended_run_ns += slice;
                }
            }

            if active[idx].slices.is_empty() {
                let done = active.swap_remove(idx);
                self.ledger.release(self.executor, done.ticket);
                self.stats.completed += 1;
                // Deadline-exact accounting: a query that was admitted in
                // time but finished late is a counted miss, not a silent
                // success.
                let missed = done.deadline_vt.is_some_and(|d| self.now_ns > d);
                if missed {
                    self.stats.deadline_misses += 1;
                }
                let t = self.stats.tenants.entry(done.tenant.clone()).or_default();
                t.completed += 1;
                if missed {
                    t.deadline_misses += 1;
                }
                outcomes.insert(
                    done.ticket,
                    QueryOutcome::Completed {
                        output: done.output,
                        stats: done.stats,
                        wait_ns: done.wait_ns,
                        finish_ns: self.now_ns,
                        missed_deadline: missed,
                    },
                );
                if !active.iter().any(|a| a.tenant == done.tenant) {
                    self.wfq.deactivate(stream);
                }
            }
        }

        SchedReport {
            outcomes,
            stats: self.stats.clone(),
        }
    }

    fn ensure_stream(&mut self, tenant: &str, weight: f64) -> usize {
        if let Some(&s) = self.streams.get(tenant) {
            // Re-registration must reach the clock too: the early return
            // used to leave the existing stream on its original weight,
            // silently ignoring `tenant()`'s documented weight update.
            self.wfq.set_weight(s, weight);
            return s;
        }
        let s = self.wfq.add_stream(weight);
        self.streams.insert(tenant.to_string(), s);
        s
    }

    /// One preemption pass at the current virtual time: while any active
    /// query is urgent, every non-urgent active query is suspended (its
    /// remaining slices parked, accruing no `run_ns`); once no urgency
    /// remains, everything suspended is resumed. A tenant's WFQ stream is
    /// suspended exactly when all of its active queries are — via
    /// `WfqClock::suspend`, which freezes the pass instead of deactivating,
    /// so resumed tenants catch up precisely the service they were denied.
    fn apply_preemption(&mut self, active: &mut [Active]) {
        let now = self.now_ns;
        let slack = self.preempt.slack_ns;
        let any_urgent = active.iter().any(|a| a.urgent(now, slack));
        for a in active.iter_mut() {
            let urgent = a.urgent(now, slack);
            if any_urgent && !urgent && !a.suspended {
                a.suspended = true;
                self.stats.preemptions += 1;
                let t = self.stats.tenants.entry(a.tenant.clone()).or_default();
                t.preemptions += 1;
            } else if a.suspended && (urgent || !any_urgent) {
                // An urgent query never stays parked (its own deadline is
                // at risk), and once the urgent work drains everyone comes
                // back.
                a.suspended = false;
                self.stats.resumed += 1;
            }
        }
        // Mirror query suspension onto streams: servable iff the tenant has
        // at least one runnable (non-suspended) active query.
        let wfq = &mut self.wfq;
        for (tenant, &stream) in &self.streams {
            let mut has_any = false;
            let mut runnable = false;
            for a in active.iter().filter(|a| &a.tenant == tenant) {
                has_any = true;
                runnable |= !a.suspended;
            }
            if !has_any {
                continue;
            }
            if runnable {
                wfq.resume(stream);
            } else {
                wfq.suspend(stream);
            }
        }
    }

    /// Reconciles the admission ledger and the active set with the
    /// executor's current device membership. Reservations held against a
    /// device that no longer exists (it died mid-run and was unplugged)
    /// are detached without touching the corpse's pool; each displaced
    /// admitted query is re-admitted against the surviving devices
    /// (ascending id, first fit — evicting residency pins if needed) or,
    /// when no survivor can take its reservation, shed with the typed
    /// [`ShedReason::CapacityLost`] — never silently wedged.
    fn reconcile_membership(
        &mut self,
        active: &mut Vec<Active>,
        outcomes: &mut BTreeMap<u64, QueryOutcome>,
    ) {
        let live = self.executor.devices().ids();
        let ghosts: Vec<DeviceId> = self
            .ledger
            .devices()
            .into_iter()
            .filter(|d| !live.contains(d))
            .collect();
        for ghost in ghosts {
            for (ticket, bytes) in self.ledger.detach_device(ghost) {
                let Some(idx) = active.iter().position(|a| a.ticket == ticket) else {
                    // The reservation belonged to a query that already
                    // resolved this step; nothing left to re-home.
                    continue;
                };
                let mut rehomed = None;
                for &cand in &live {
                    if self
                        .ledger
                        .reserve(self.executor, cand, ticket, bytes)
                        .is_ok()
                    {
                        rehomed = Some(cand);
                        break;
                    }
                }
                match rehomed {
                    Some(cand) => active[idx].device = cand,
                    None => {
                        let gone = active.remove(idx);
                        self.stats.shed_capacity_lost += 1;
                        self.shed(
                            &gone.tenant,
                            gone.ticket,
                            ShedReason::CapacityLost,
                            outcomes,
                        );
                        if !active.iter().any(|a| a.tenant == gone.tenant) {
                            if let Some(&s) = self.streams.get(&gone.tenant) {
                                self.wfq.deactivate(s);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Tries to admit the head-of-line candidate. `Started` hands back a
    /// running query, `Resolved` means the candidate was consumed without
    /// running (shed/rejected/failed), `Hold` leaves it queued.
    fn try_admit(
        &mut self,
        tenant: &str,
        entry: &QueuedEntry,
        active: &[Active],
        outcomes: &mut BTreeMap<u64, QueryOutcome>,
    ) -> Admit {
        let spec = &self.pending[&entry.ticket];

        if spec.cancel.is_cancelled() {
            self.queues.pop(tenant);
            self.pending.remove(&entry.ticket);
            self.shed(tenant, entry.ticket, ShedReason::Cancelled, outcomes);
            return Admit::Resolved;
        }

        // Remaining deadline budget after time already spent queued.
        let remaining = entry.deadline_vt.map(|dl| dl - self.now_ns);
        if matches!(remaining, Some(r) if r <= 0.0) {
            self.queues.pop(tenant);
            self.pending.remove(&entry.ticket);
            self.stats.shed_deadline += 1;
            self.shed(tenant, entry.ticket, ShedReason::DeadlineExpired, outcomes);
            return Admit::Resolved;
        }

        let footprint = spec.footprint_bytes.unwrap_or_else(|| {
            estimate_footprint_bytes(&spec.graph, &spec.inputs, self.executor.config().chunk_rows)
        });

        let device = match self.choose_device(spec, footprint, remaining, active) {
            Ok(d) => d,
            Err(Unplaceable::Capacity) => {
                self.queues.pop(tenant);
                self.pending.remove(&entry.ticket);
                self.reject(
                    tenant,
                    entry.ticket,
                    "estimated footprint exceeds every device's capacity",
                    outcomes,
                );
                return Admit::Resolved;
            }
            Err(Unplaceable::Deadline) => {
                self.queues.pop(tenant);
                self.pending.remove(&entry.ticket);
                self.stats.shed_deadline += 1;
                self.shed(tenant, entry.ticket, ShedReason::BudgetExceeded, outcomes);
                return Admit::Resolved;
            }
            Err(Unplaceable::Other(e)) => {
                self.queues.pop(tenant);
                self.pending.remove(&entry.ticket);
                self.fail(tenant, entry.ticket, e, outcomes);
                return Admit::Resolved;
            }
        };

        if self
            .ledger
            .reserve(self.executor, device, entry.ticket, footprint)
            .is_err()
        {
            // Doesn't fit next to the currently admitted queries — hold at
            // the gate until a completion frees its reservation.
            return Admit::Hold;
        }

        // Admitted. Execute for real (results must be exact); the modeled
        // time lands on the shared timeline slice by slice.
        // A waiter admitted past the starvation horizon carries urgency in
        // with it (the aged-waiter preemption trigger).
        let aged_urgent = self.preempt.enabled
            && self.queues.crossed_starvation_horizon(
                entry,
                self.now_ns,
                self.preempt.starve_multiplier,
            );
        self.queues.pop(tenant);
        let spec = self.pending.remove(&entry.ticket).expect("pending spec");
        let wait_ns = (self.now_ns - entry.submit_vt).max(0.0);
        self.stats.admitted += 1;
        if wait_ns > 0.0 {
            self.stats.held += 1;
        }
        {
            let t = self.stats.tenants.entry(tenant.to_string()).or_default();
            t.wait_ns += wait_ns;
        }
        let mut graph = spec.graph.clone();
        graph.retarget(device);
        let run = self.executor.run_with_deadline(
            &graph,
            &spec.inputs,
            spec.model,
            &spec.cancel,
            remaining,
        );
        match run {
            Ok((output, stats)) => {
                self.absorb_robustness_counters(&stats);
                let slices: VecDeque<f64> = if stats.slice_ns.is_empty() {
                    VecDeque::from([stats.total_ns])
                } else {
                    stats.slice_ns.iter().copied().collect()
                };
                let remaining_ns = slices.iter().sum();
                Admit::Started(Box::new(Active {
                    ticket: entry.ticket,
                    tenant: tenant.to_string(),
                    device,
                    admit_seq: 0,
                    slices,
                    remaining_ns,
                    deadline_vt: entry.deadline_vt,
                    suspended: false,
                    aged_urgent,
                    output,
                    stats: Box::new(stats),
                    wait_ns,
                }))
            }
            Err(e) => {
                // The failed run's counters still describe real watchdog and
                // retransmit activity; the executor keeps them around.
                if let Some(s) = self.executor.last_run_stats() {
                    let s = s.clone();
                    self.absorb_robustness_counters(&s);
                }
                self.ledger.release(self.executor, entry.ticket);
                self.fail(tenant, entry.ticket, e, outcomes);
                Admit::Resolved
            }
        }
    }

    /// Folds one executed query's straggler/corruption counters into the
    /// scheduler-level aggregates.
    fn absorb_robustness_counters(&mut self, stats: &ExecutionStats) {
        self.stats.watchdog_fires += stats.watchdog_fires as u64;
        self.stats.hedged_launches += stats.hedged_launches as u64;
        self.stats.hedge_wins += stats.hedge_wins as u64;
        self.stats.corruption_retransmits += stats.corruption_retransmits as u64;
        self.stats.device_deaths += stats.device_deaths as u64;
        self.stats.buffers_written_off += stats.buffers_written_off as u64;
        self.stats.restaged_bytes += stats.restaged_bytes;
        self.stats.hot_adds += stats.hot_adds as u64;
        self.stats.checkpoints_taken += stats.checkpoints_taken as u64;
        self.stats.checkpoint_bytes += stats.checkpoint_bytes;
        self.stats.resumes += stats.resumes as u64;
        self.stats.chunks_skipped_on_resume += stats.chunks_skipped_on_resume as u64;
        self.stats.resume_validation_failures += stats.resume_validation_failures as u64;
    }

    /// Picks the target device: the pin, the spec's policy under its
    /// remaining budget, or the cheapest non-quarantined device with
    /// capacity — with the modeled backlog of already-admitted queries
    /// added to each device's cost so concurrent placements spread apart.
    fn choose_device(
        &self,
        spec: &QuerySpec,
        footprint: u64,
        remaining_budget: Option<f64>,
        active: &[Active],
    ) -> std::result::Result<DeviceId, Unplaceable> {
        let infos = self.executor.devices().infos();
        let feasible: Vec<_> = infos
            .iter()
            .filter(|i| i.memory_capacity >= footprint)
            .cloned()
            .collect();

        if let Some(pin) = spec.pin_device {
            let info = infos.iter().find(|i| i.id == pin).ok_or_else(|| {
                Unplaceable::Other(ExecError::InvalidGraph(format!(
                    "pinned device {pin:?} not plugged"
                )))
            })?;
            if info.memory_capacity < footprint {
                return Err(Unplaceable::Capacity);
            }
            return Ok(pin);
        }

        if feasible.is_empty() {
            return Err(Unplaceable::Capacity);
        }

        let costs: Vec<(DeviceId, f64)> = feasible
            .iter()
            .map(|i| {
                let penalty = self.executor.health().retry_penalty_ns(i.id);
                // Inputs already pinned on a device by the residency cache
                // do not pay transfer again — a cache-warm device wins the
                // placement it is warm for.
                let resident = self.executor.residency_resident_bytes(i.id, &spec.inputs);
                let place = self
                    .executor
                    .devices()
                    .get(i.id)
                    .map(|d| d.placement_cost_ns_resident(footprint, resident, penalty))
                    .unwrap_or(f64::INFINITY);
                (i.id, place + backlog_ns(active, i.id))
            })
            .collect();

        if let Some(policy) = &spec.policy {
            return policy
                .choose_within_budget(&feasible, &costs, remaining_budget)
                .map_err(Unplaceable::Other);
        }

        // Default rule: cheapest feasible device, skipping quarantined ones
        // when any healthy device qualifies; shed when even the cheapest
        // modeled cost overruns the remaining budget.
        let healthy: Vec<_> = costs
            .iter()
            .filter(|(id, _)| !self.executor.health().is_quarantined(*id))
            .copied()
            .collect();
        let pool = if healthy.is_empty() { &costs } else { &healthy };
        let (best, cost) = pool
            .iter()
            .copied()
            .min_by(|(ia, ca), (ib, cb)| ca.total_cmp(cb).then(ia.0.cmp(&ib.0)))
            .expect("feasible set is non-empty");
        if matches!(remaining_budget, Some(b) if cost > b) {
            return Err(Unplaceable::Deadline);
        }
        Ok(best)
    }

    fn shed(
        &mut self,
        tenant: &str,
        ticket: u64,
        reason: ShedReason,
        outcomes: &mut BTreeMap<u64, QueryOutcome>,
    ) {
        let t = self.stats.tenants.entry(tenant.to_string()).or_default();
        t.shed += 1;
        outcomes.insert(ticket, QueryOutcome::Shed { reason });
    }

    fn reject(
        &mut self,
        tenant: &str,
        ticket: u64,
        reason: &str,
        outcomes: &mut BTreeMap<u64, QueryOutcome>,
    ) {
        self.stats.rejected_capacity += 1;
        let t = self.stats.tenants.entry(tenant.to_string()).or_default();
        t.rejected += 1;
        outcomes.insert(
            ticket,
            QueryOutcome::Rejected {
                reason: reason.to_string(),
            },
        );
    }

    fn fail(
        &mut self,
        tenant: &str,
        ticket: u64,
        error: ExecError,
        outcomes: &mut BTreeMap<u64, QueryOutcome>,
    ) {
        self.stats.failed += 1;
        let t = self.stats.tenants.entry(tenant.to_string()).or_default();
        t.failed += 1;
        outcomes.insert(ticket, QueryOutcome::Failed { error });
    }

    /// Releases any reservations still outstanding (defensive; `run_all`
    /// releases on every exit path). O(outstanding reservations), not
    /// O(tickets ever issued): the ledger walks only what it still tracks.
    pub fn release_all(&mut self) -> Result<()> {
        self.ledger.release_outstanding(self.executor);
        Ok(())
    }
}

/// Modeled ns of already-admitted work still queued for `device` — the
/// congestion term added to placement costs so concurrent queries spread
/// across devices instead of piling onto the one with the best raw cost.
fn backlog_ns(active: &[Active], device: DeviceId) -> f64 {
    active
        .iter()
        .filter(|a| a.device == device)
        .map(|a| a.slices.iter().sum::<f64>())
        .sum()
}

enum Admit {
    Started(Box<Active>),
    Resolved,
    Hold,
}

enum Unplaceable {
    Capacity,
    Deadline,
    Other(ExecError),
}
