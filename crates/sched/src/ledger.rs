//! The admission reservation ledger.
//!
//! Every admitted query holds a device-memory reservation from admission
//! until it finishes (or fails) on the shared timeline, charged against the
//! per-device [`adamant_device::pool::BufferPool`] admission counters. The
//! scheduler admits a query only when its estimated footprint fits the
//! target device's *unreserved* capacity — so concurrently admitted queries
//! cannot OOM each other by construction, regardless of the order their
//! allocations interleave on the timeline.

use adamant_core::error::Result;
use adamant_core::executor::Executor;
use adamant_device::device::DeviceId;
use std::collections::BTreeMap;

/// Tracks which ticket holds how many reserved bytes on which device.
#[derive(Debug, Default)]
pub struct ReservationLedger {
    entries: BTreeMap<u64, (DeviceId, u64)>,
}

impl ReservationLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        ReservationLedger::default()
    }

    /// Whether `bytes` more can currently be promised on `device`.
    pub fn fits(executor: &Executor, device: DeviceId, bytes: u64) -> bool {
        executor
            .devices()
            .get(device)
            .map(|d| d.pool().admission_available() >= bytes)
            .unwrap_or(false)
    }

    /// Reserves `bytes` on `device` for `ticket`. Fails (leaving the ledger
    /// unchanged) when the device's outstanding reservations cannot take it.
    pub fn reserve(
        &mut self,
        executor: &mut Executor,
        device: DeviceId,
        ticket: u64,
        bytes: u64,
    ) -> Result<()> {
        debug_assert!(
            !self.entries.contains_key(&ticket),
            "ticket {ticket} reserved twice"
        );
        executor
            .devices_mut()
            .get_mut(device)?
            .pool_mut()
            .admission_reserve(bytes)?;
        self.entries.insert(ticket, (device, bytes));
        Ok(())
    }

    /// Releases whatever `ticket` holds (idempotent).
    pub fn release(&mut self, executor: &mut Executor, ticket: u64) {
        if let Some((device, bytes)) = self.entries.remove(&ticket) {
            if let Ok(dev) = executor.devices_mut().get_mut(device) {
                dev.pool_mut().admission_release(bytes);
            }
        }
    }

    /// Releases every outstanding reservation in one pass. O(outstanding),
    /// not O(tickets ever issued): only tickets the ledger actually tracks
    /// are touched.
    pub fn release_outstanding(&mut self, executor: &mut Executor) {
        let entries = std::mem::take(&mut self.entries);
        for (device, bytes) in entries.into_values() {
            if let Ok(dev) = executor.devices_mut().get_mut(device) {
                dev.pool_mut().admission_release(bytes);
            }
        }
    }

    /// Whether `ticket` currently holds a reservation.
    pub fn holds(&self, ticket: u64) -> bool {
        self.entries.contains_key(&ticket)
    }

    /// Bytes currently reserved on `device` across all tickets.
    pub fn reserved_on(&self, device: DeviceId) -> u64 {
        self.entries
            .values()
            .filter(|(d, _)| *d == device)
            .map(|(_, b)| b)
            .sum()
    }

    /// Number of outstanding reservations.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }
}
