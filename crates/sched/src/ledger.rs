//! The admission reservation ledger.
//!
//! Every admitted query holds a device-memory reservation from admission
//! until it finishes (or fails) on the shared timeline, charged against the
//! per-device [`adamant_device::pool::BufferPool`] admission counters. The
//! scheduler admits a query only when its estimated footprint fits the
//! target device's *unreserved* capacity — so concurrently admitted queries
//! cannot OOM each other by construction, regardless of the order their
//! allocations interleave on the timeline.

use adamant_core::error::Result;
use adamant_core::executor::Executor;
use adamant_device::device::DeviceId;
use std::collections::BTreeMap;

/// Tracks which ticket holds how many reserved bytes on which device.
#[derive(Debug, Default)]
pub struct ReservationLedger {
    entries: BTreeMap<u64, (DeviceId, u64)>,
}

impl ReservationLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        ReservationLedger::default()
    }

    /// Whether `bytes` more can currently be promised on `device`. Counts
    /// residency-cache pins as available: pins yield to admission (they are
    /// evicted by [`ReservationLedger::reserve`]), so budget they hold is
    /// still promisable.
    pub fn fits(executor: &Executor, device: DeviceId, bytes: u64) -> bool {
        executor
            .devices()
            .get(device)
            .map(|d| {
                d.pool().admission_available() + executor.residency_evictable_bytes(device) >= bytes
            })
            .unwrap_or(false)
    }

    /// Reserves `bytes` on `device` for `ticket`. Fails (leaving the ledger
    /// unchanged) when the device's outstanding reservations cannot take it.
    ///
    /// Residency-cache pins draw from the same admission budget; when the
    /// first attempt fails the executor evicts pins on `device` until the
    /// reservation fits (LRU order) and one retry is made. Admissions
    /// therefore always win over cache pins — the cache can be starved, the
    /// admission queue cannot deadlock behind it.
    pub fn reserve(
        &mut self,
        executor: &mut Executor,
        device: DeviceId,
        ticket: u64,
        bytes: u64,
    ) -> Result<()> {
        debug_assert!(
            !self.entries.contains_key(&ticket),
            "ticket {ticket} reserved twice"
        );
        let first = executor
            .devices_mut()
            .get_mut(device)?
            .pool_mut()
            .admission_reserve(bytes);
        if let Err(first_err) = first {
            if executor.evict_residency_for_admission(device, bytes) == 0 {
                return Err(first_err.into());
            }
            executor
                .devices_mut()
                .get_mut(device)?
                .pool_mut()
                .admission_reserve(bytes)?;
        }
        self.entries.insert(ticket, (device, bytes));
        Ok(())
    }

    /// Releases whatever `ticket` holds (idempotent).
    pub fn release(&mut self, executor: &mut Executor, ticket: u64) {
        if let Some((device, bytes)) = self.entries.remove(&ticket) {
            if let Ok(dev) = executor.devices_mut().get_mut(device) {
                dev.pool_mut().admission_release(bytes);
            }
        }
    }

    /// Releases every outstanding reservation in one pass. O(outstanding),
    /// not O(tickets ever issued): only tickets the ledger actually tracks
    /// are touched.
    pub fn release_outstanding(&mut self, executor: &mut Executor) {
        let entries = std::mem::take(&mut self.entries);
        for (device, bytes) in entries.into_values() {
            if let Ok(dev) = executor.devices_mut().get_mut(device) {
                dev.pool_mut().admission_release(bytes);
            }
        }
    }

    /// Forgets every reservation on a permanently dead device **without**
    /// releasing anything against its pool (the corpse's accounting is
    /// reconciled by the engine's write-off, not by the ledger). Returns
    /// the displaced `(ticket, bytes)` pairs ascending by ticket — the
    /// scheduler re-admits them against survivors or sheds them with a
    /// typed outcome.
    pub fn detach_device(&mut self, device: DeviceId) -> Vec<(u64, u64)> {
        let displaced: Vec<(u64, u64)> = self
            .entries
            .iter()
            .filter(|(_, (d, _))| *d == device)
            .map(|(&t, &(_, b))| (t, b))
            .collect();
        for (t, _) in &displaced {
            self.entries.remove(t);
        }
        displaced
    }

    /// Devices with at least one outstanding reservation, ascending.
    pub fn devices(&self) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self.entries.values().map(|(d, _)| *d).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Shrinks (or grows) `device`'s admission capacity to `bytes`. On a
    /// shrink that leaves the pool over-subscribed, outstanding
    /// reservations are evicted highest-ticket-first (newest admissions
    /// yield; their bytes are released against the pool) until the rest
    /// fit the new capacity. Returns the displaced tickets.
    pub fn set_capacity(
        &mut self,
        executor: &mut Executor,
        device: DeviceId,
        bytes: u64,
    ) -> Vec<u64> {
        let mut displaced = Vec::new();
        let Ok(dev) = executor.devices_mut().get_mut(device) else {
            return displaced;
        };
        dev.pool_mut().set_capacity(bytes);
        while executor
            .devices()
            .get(device)
            .map(|d| d.pool().admission_reserved() > d.pool().capacity())
            .unwrap_or(false)
        {
            let victim = self
                .entries
                .iter()
                .rev()
                .find(|(_, (d, _))| *d == device)
                .map(|(&t, _)| t);
            let Some(ticket) = victim else { break };
            self.release(executor, ticket);
            displaced.push(ticket);
        }
        displaced
    }

    /// Whether `ticket` currently holds a reservation.
    pub fn holds(&self, ticket: u64) -> bool {
        self.entries.contains_key(&ticket)
    }

    /// Bytes currently reserved on `device` across all tickets.
    pub fn reserved_on(&self, device: DeviceId) -> u64 {
        self.entries
            .values()
            .filter(|(d, _)| *d == device)
            .map(|(_, b)| b)
            .sum()
    }

    /// Number of outstanding reservations.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_core::executor::{Executor, ExecutorConfig, QueryInputs};
    use adamant_core::models::ExecutionModel;
    use adamant_core::residency::ResidencyConfig;
    use adamant_device::profiles::DeviceProfile;
    use adamant_device::sdk::SdkKind;
    use adamant_plan::PlanBuilder;
    use adamant_task::params::AggFunc;
    use adamant_task::registry::TaskRegistry;

    fn executor_with_cache() -> (Executor, DeviceId) {
        let tasks = TaskRegistry::with_defaults(&[SdkKind::Cuda, SdkKind::Host]);
        let mut exec = Executor::new(
            tasks,
            ExecutorConfig {
                chunk_rows: 256,
                ..Default::default()
            },
        );
        let dev = exec.add_profile(&DeviceProfile::cuda_rtx2080ti()).unwrap();
        exec.set_residency_cache(ResidencyConfig::new(1 << 20));
        (exec, dev)
    }

    fn run_sum_query(exec: &mut Executor, dev: DeviceId) {
        let mut pb = PlanBuilder::new(dev);
        let mut s = pb.scan("t", &["x"]);
        let x = s.materialized(&mut pb, "x").unwrap();
        let sum = pb.agg_block(x, AggFunc::Sum, "s");
        pb.output("s", sum);
        let graph = pb.build().unwrap();
        let mut inputs = QueryInputs::new();
        inputs.bind("x", (0..4096).collect());
        exec.run(&graph, &inputs, ExecutionModel::Chunked).unwrap();
    }

    #[test]
    fn admission_evicts_cache_pins_instead_of_deadlocking() {
        // The pathological shape: the residency cache holds pins charged
        // against the admission budget, and a query asks for 100% of the
        // device. Pins must yield (LRU-evicted), the reservation must
        // succeed — admission can never starve behind the cache.
        let (mut exec, dev) = executor_with_cache();
        run_sum_query(&mut exec, dev);
        let pinned = exec.residency_evictable_bytes(dev);
        assert!(pinned > 0, "the run should have pinned its input");
        let pool_total = exec.devices().get(dev).unwrap().pool().capacity();
        // The pins hold part of the admission budget...
        assert_eq!(
            exec.devices().get(dev).unwrap().pool().admission_reserved(),
            pinned
        );
        // ...yet the full capacity still *fits* (pins are promisable).
        assert!(ReservationLedger::fits(&exec, dev, pool_total));

        let mut ledger = ReservationLedger::new();
        ledger.reserve(&mut exec, dev, 1, pool_total).unwrap();
        assert!(ledger.holds(1));
        assert_eq!(ledger.reserved_on(dev), pool_total);
        // The pins were evicted to make room, not deadlocked against.
        assert_eq!(exec.residency_evictable_bytes(dev), 0);

        // Beyond capacity still fails cleanly (nothing left to evict).
        assert!(ledger.reserve(&mut exec, dev, 2, 1).is_err());
        assert!(!ledger.holds(2));

        ledger.release(&mut exec, 1);
        assert_eq!(
            exec.devices().get(dev).unwrap().pool().admission_reserved(),
            0
        );
    }

    #[test]
    fn detach_forgets_reservations_without_touching_the_pool() {
        let tasks = TaskRegistry::with_defaults(&[SdkKind::Cuda, SdkKind::Host]);
        let mut exec = Executor::new(tasks, ExecutorConfig::default());
        let dev = exec.add_profile(&DeviceProfile::cuda_rtx2080ti()).unwrap();
        let mut ledger = ReservationLedger::new();
        ledger.reserve(&mut exec, dev, 1, 1024).unwrap();
        ledger.reserve(&mut exec, dev, 2, 2048).unwrap();
        let displaced = ledger.detach_device(dev);
        assert_eq!(displaced, vec![(1, 1024), (2, 2048)]);
        assert_eq!(ledger.outstanding(), 0);
        // The pool still carries the charge: the engine's write-off owns
        // reconciling a dead device, not the ledger.
        assert_eq!(
            exec.devices().get(dev).unwrap().pool().admission_reserved(),
            1024 + 2048
        );
    }

    #[test]
    fn set_capacity_shrink_evicts_newest_reservations_first() {
        let tasks = TaskRegistry::with_defaults(&[SdkKind::Cuda, SdkKind::Host]);
        let mut exec = Executor::new(tasks, ExecutorConfig::default());
        let dev = exec.add_profile(&DeviceProfile::cuda_rtx2080ti()).unwrap();
        let mut ledger = ReservationLedger::new();
        ledger.reserve(&mut exec, dev, 1, 1000).unwrap();
        ledger.reserve(&mut exec, dev, 2, 1000).unwrap();
        ledger.reserve(&mut exec, dev, 3, 1000).unwrap();
        // Shrink so only 1500 bytes of admission capacity remain: tickets 3
        // then 2 must yield (newest first); ticket 1 survives.
        let displaced = ledger.set_capacity(&mut exec, dev, 1500);
        assert_eq!(displaced, vec![3, 2]);
        assert!(ledger.holds(1));
        assert!(!ledger.holds(2) && !ledger.holds(3));
        assert_eq!(
            exec.devices().get(dev).unwrap().pool().admission_reserved(),
            1000
        );
        assert_eq!(exec.devices().get(dev).unwrap().pool().capacity(), 1500);
    }

    #[test]
    fn reserve_without_cache_still_fails_on_oversubscription() {
        let tasks = TaskRegistry::with_defaults(&[SdkKind::Cuda, SdkKind::Host]);
        let mut exec = Executor::new(tasks, ExecutorConfig::default());
        let dev = exec.add_profile(&DeviceProfile::cuda_rtx2080ti()).unwrap();
        let cap = exec.devices().get(dev).unwrap().pool().capacity();
        let mut ledger = ReservationLedger::new();
        ledger.reserve(&mut exec, dev, 1, cap).unwrap();
        assert!(ledger.reserve(&mut exec, dev, 2, 1).is_err());
        ledger.release_outstanding(&mut exec);
        assert_eq!(ledger.outstanding(), 0);
    }
}
