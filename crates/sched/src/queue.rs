//! Per-tenant admission queues: weighted priority, FIFO within a tenant,
//! starvation-free aging, and earliest-deadline-first tiebreaks.
//!
//! Ordering is evaluated lazily at candidate-selection time (no heap):
//! queue depths per tenant are small and selection cost is dwarfed by the
//! modeled execution it gates, while lazy evaluation keeps aging exact —
//! a query's effective weight is computed against the *current* virtual
//! time, not the one when it was enqueued.

use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One queued admission request (the spec itself lives with the scheduler;
/// the queue tracks ordering metadata only).
#[derive(Clone, Debug)]
pub struct QueuedEntry {
    /// The scheduler-issued ticket identifying the query.
    pub ticket: u64,
    /// Global submission sequence number (final FIFO tiebreak).
    pub seq: u64,
    /// Virtual time when the query was submitted.
    pub submit_vt: f64,
    /// Absolute deadline on the shared timeline, if any
    /// (`submit_vt + deadline_ns`); `None` sorts last among equals.
    pub deadline_vt: Option<f64>,
}

/// Per-tenant weighted FIFO queues with aging.
#[derive(Debug, Default)]
pub struct AdmissionQueues {
    queues: BTreeMap<String, VecDeque<QueuedEntry>>,
    weights: BTreeMap<String, f64>,
    /// Waiting this many modeled ns doubles a tenant's effective weight
    /// (starvation-freedom: any waiter eventually outranks any fixed
    /// weight).
    age_boost_ns: f64,
}

impl AdmissionQueues {
    /// Creates empty queues; `age_boost_ns` controls how fast waiting
    /// queries gain priority (see [`AdmissionQueues::effective_weight`]).
    pub fn new(age_boost_ns: f64) -> Self {
        AdmissionQueues {
            age_boost_ns: if age_boost_ns > 0.0 {
                age_boost_ns
            } else {
                f64::INFINITY
            },
            ..Default::default()
        }
    }

    /// Registers `tenant` with a fair-share `weight` (floored to a small
    /// positive value). Re-registering updates the weight.
    pub fn register(&mut self, tenant: &str, weight: f64) {
        self.weights.insert(tenant.to_string(), weight.max(1e-9));
    }

    /// The tenant's registered weight (1.0 when never registered).
    pub fn weight(&self, tenant: &str) -> f64 {
        self.weights.get(tenant).copied().unwrap_or(1.0)
    }

    /// Registered tenant names, in deterministic order.
    pub fn tenants(&self) -> Vec<String> {
        self.weights.keys().cloned().collect()
    }

    /// Appends an entry to `tenant`'s FIFO queue; returns the new depth.
    pub fn push(&mut self, tenant: &str, entry: QueuedEntry) -> usize {
        if !self.weights.contains_key(tenant) {
            self.register(tenant, 1.0);
        }
        let q = self.queues.entry(tenant.to_string()).or_default();
        q.push_back(entry);
        q.len()
    }

    /// Queue depth for one tenant.
    pub fn depth(&self, tenant: &str) -> usize {
        self.queues.get(tenant).map(|q| q.len()).unwrap_or(0)
    }

    /// Total queued entries across tenants.
    pub fn len(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A tenant's priority for its head-of-line query at virtual time
    /// `now_vt`: the registered weight scaled up multiplicatively by how
    /// long the query has waited, so a low-weight tenant can starve for at
    /// most O(`age_boost_ns` · weight-ratio) before outranking everyone.
    pub fn effective_weight(&self, tenant: &str, submit_vt: f64, now_vt: f64) -> f64 {
        let waited = (now_vt - submit_vt).max(0.0);
        self.weight(tenant) * (1.0 + waited / self.age_boost_ns)
    }

    /// The aging horizon (modeled ns; `INFINITY` when aging is disabled).
    pub fn age_boost_ns(&self) -> f64 {
        self.age_boost_ns
    }

    /// The starvation signal preemption listens to: true when `entry` has
    /// waited past `horizon_multiplier ×` the aging horizon at `now_vt`.
    /// Such a waiter has been overtaken long enough that, once admitted, it
    /// is treated as urgent and may preempt running queries. Always false
    /// when aging is disabled (`age_boost_ns == INFINITY`).
    pub fn crossed_starvation_horizon(
        &self,
        entry: &QueuedEntry,
        now_vt: f64,
        horizon_multiplier: f64,
    ) -> bool {
        let waited = (now_vt - entry.submit_vt).max(0.0);
        waited >= self.age_boost_ns * horizon_multiplier.max(0.0)
    }

    /// The next admission candidate at `now_vt`: the head-of-line entry of
    /// the tenant with the highest effective weight; ties broken by
    /// earliest deadline (EDF, `None` last), then submission order.
    /// Returns `(tenant, entry)` without removing it.
    pub fn peek_candidate(&self, now_vt: f64) -> Option<(String, QueuedEntry)> {
        let mut best: Option<(f64, f64, u64, String, QueuedEntry)> = None;
        for (tenant, q) in &self.queues {
            let Some(head) = q.front() else { continue };
            let eff = self.effective_weight(tenant, head.submit_vt, now_vt);
            let dl = head.deadline_vt.unwrap_or(f64::INFINITY);
            let better = match &best {
                None => true,
                Some((beff, bdl, bseq, _, _)) => {
                    // Higher effective weight wins; then earlier deadline;
                    // then earlier submission. total_cmp keeps NaN-free
                    // determinism.
                    match eff.total_cmp(beff) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Less => false,
                        std::cmp::Ordering::Equal => match dl.total_cmp(bdl) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Greater => false,
                            std::cmp::Ordering::Equal => head.seq < *bseq,
                        },
                    }
                }
            };
            if better {
                best = Some((eff, dl, head.seq, tenant.clone(), head.clone()));
            }
        }
        best.map(|(_, _, _, tenant, entry)| (tenant, entry))
    }

    /// Removes and returns `tenant`'s head-of-line entry.
    pub fn pop(&mut self, tenant: &str) -> Option<QueuedEntry> {
        self.queues.get_mut(tenant)?.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ticket: u64, seq: u64, submit_vt: f64, deadline_vt: Option<f64>) -> QueuedEntry {
        QueuedEntry {
            ticket,
            seq,
            submit_vt,
            deadline_vt,
        }
    }

    #[test]
    fn higher_weight_tenant_goes_first() {
        let mut q = AdmissionQueues::new(1e12);
        q.register("light", 1.0);
        q.register("heavy", 2.0);
        q.push("light", entry(1, 1, 0.0, None));
        q.push("heavy", entry(2, 2, 0.0, None));
        let (tenant, e) = q.peek_candidate(0.0).unwrap();
        assert_eq!(tenant, "heavy");
        assert_eq!(e.ticket, 2);
    }

    #[test]
    fn aging_lets_a_light_tenant_overtake() {
        let mut q = AdmissionQueues::new(1_000.0);
        q.register("light", 1.0);
        q.register("heavy", 4.0);
        // Light submitted long ago; heavy just arrived.
        q.push("light", entry(1, 1, 0.0, None));
        q.push("heavy", entry(2, 2, 10_000.0, None));
        // At vt=10_000 light has waited 10 boosts: 1*(1+10) = 11 > 4.
        let (tenant, _) = q.peek_candidate(10_000.0).unwrap();
        assert_eq!(tenant, "light", "aged query must outrank raw weight");
        // Immediately after both submit, raw weight still wins.
        let mut fresh = AdmissionQueues::new(1_000.0);
        fresh.register("light", 1.0);
        fresh.register("heavy", 4.0);
        fresh.push("light", entry(1, 1, 0.0, None));
        fresh.push("heavy", entry(2, 2, 0.0, None));
        assert_eq!(fresh.peek_candidate(0.0).unwrap().0, "heavy");
    }

    #[test]
    fn edf_breaks_equal_weight_ties_then_fifo() {
        let mut q = AdmissionQueues::new(f64::INFINITY);
        q.register("a", 1.0);
        q.register("b", 1.0);
        q.push("a", entry(1, 1, 0.0, Some(9_000.0)));
        q.push("b", entry(2, 2, 0.0, Some(5_000.0)));
        let (tenant, _) = q.peek_candidate(0.0).unwrap();
        assert_eq!(tenant, "b", "tighter deadline wins the tie");
        // No deadlines at all → submission order.
        let mut f = AdmissionQueues::new(f64::INFINITY);
        f.register("a", 1.0);
        f.register("b", 1.0);
        f.push("b", entry(2, 1, 0.0, None));
        f.push("a", entry(1, 2, 0.0, None));
        assert_eq!(f.peek_candidate(0.0).unwrap().1.seq, 1);
    }

    #[test]
    fn starvation_horizon_scales_with_age_boost() {
        let q = AdmissionQueues::new(1_000.0);
        let e = entry(1, 1, 0.0, None);
        assert!(!q.crossed_starvation_horizon(&e, 3_999.0, 4.0));
        assert!(q.crossed_starvation_horizon(&e, 4_000.0, 4.0));
        // Disabled aging never reports starvation.
        let off = AdmissionQueues::new(0.0);
        assert_eq!(off.age_boost_ns(), f64::INFINITY);
        assert!(!off.crossed_starvation_horizon(&e, 1e18, 4.0));
    }

    #[test]
    fn fifo_within_one_tenant() {
        let mut q = AdmissionQueues::new(1_000.0);
        q.register("t", 1.0);
        q.push("t", entry(10, 1, 0.0, None));
        q.push("t", entry(11, 2, 0.0, Some(1.0)));
        // Even though the second entry has a tight deadline, the head of
        // line goes first: FIFO within a tenant.
        assert_eq!(q.peek_candidate(0.0).unwrap().1.ticket, 10);
        assert_eq!(q.pop("t").unwrap().ticket, 10);
        assert_eq!(q.peek_candidate(0.0).unwrap().1.ticket, 11);
    }
}
