//! Device-memory footprint estimation for admission control.
//!
//! Admission needs a *pre-execution* estimate of how many device bytes a
//! query will hold at once. Two estimators feed it:
//!
//! * TPC-H plans carry an analytic estimate
//!   (`adamant_tpch::TpchQuery::analytic_footprint_bytes`, built on the
//!   `tpch::footprint` scale-factor model) which callers pass through
//!   [`crate::QuerySpec::with_footprint`];
//! * everything else falls back to [`estimate_footprint_bytes`], a generic
//!   walk of the primitive graph mirroring how the executor actually
//!   allocates: staged scan chunks, whole-placed side inputs, breaker
//!   accumulators sized by the scan, and chunk-sized scratch.
//!
//! The estimate is deliberately conservative (it assumes every pipeline's
//! buffers are live at once). Over-estimating delays admission; the
//! under-estimate case is the dangerous one, and even then the pool's hard
//! `used`-vs-`capacity` check still catches a real overcommit at
//! allocation time.

use adamant_core::executor::QueryInputs;
use adamant_core::graph::{DataRef, PrimitiveGraph};

/// Bytes per element everywhere in the simulated engine (`i64` columns).
pub const ELEM_BYTES: u64 = 8;

/// Staging slots the estimator charges per scanned column — the double
/// buffering of the pipelined/4-phase models is the common case.
pub const STAGING_SLOTS: u64 = 2;

/// Estimates the peak device bytes `graph` needs when run over `inputs`
/// with `chunk_rows`-row streaming chunks.
///
/// Per scanned column: [`STAGING_SLOTS`] chunk-sized staging buffers. Per
/// non-scan (whole) input: its full length. Per node output: a scan-sized
/// accumulator for pipeline breakers, a chunk-sized scratch otherwise.
pub fn estimate_footprint_bytes(
    graph: &PrimitiveGraph,
    inputs: &QueryInputs,
    chunk_rows: usize,
) -> u64 {
    let mut scan_rows = 0usize;
    for gi in graph.inputs() {
        if gi.scan.is_some() {
            if let Some(col) = inputs.get(&gi.name) {
                scan_rows = scan_rows.max(col.len());
            }
        }
    }
    let chunk = chunk_rows.max(1).min(scan_rows.max(1)) as u64;

    let mut total = 0u64;
    for gi in graph.inputs() {
        match &gi.scan {
            Some(_) => total += STAGING_SLOTS * chunk * ELEM_BYTES,
            None => {
                let rows = inputs.get(&gi.name).map(|c| c.len()).unwrap_or(0) as u64;
                total += rows * ELEM_BYTES;
            }
        }
    }
    for node in graph.nodes() {
        let whole_rows = node
            .inputs
            .iter()
            .filter_map(|r| match r {
                DataRef::Input(i) if graph.inputs()[*i].scan.is_none() => {
                    inputs.get(&graph.inputs()[*i].name).map(|c| c.len())
                }
                _ => None,
            })
            .max()
            .unwrap_or(0) as u64;
        let out_rows = if node.kind.is_pipeline_breaker() {
            // Breaker accumulators are sized by the whole scan (worst case:
            // a materialize that keeps every row).
            (scan_rows as u64).max(whole_rows)
        } else if scan_rows > 0 {
            chunk.max(whole_rows)
        } else {
            whole_rows
        };
        total += node.output_count as u64 * out_rows * ELEM_BYTES;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_device::device::DeviceId;
    use adamant_plan::{Expr, PlanBuilder, Predicate};
    use adamant_task::params::{AggFunc, CmpOp};

    fn filter_map_sum() -> PrimitiveGraph {
        let mut pb = PlanBuilder::new(DeviceId(0));
        let mut s = pb.scan("t", &["x"]);
        s.filter(&mut pb, Predicate::cmp("x", CmpOp::Ge, 10))
            .unwrap();
        s.project(&mut pb, "y", Expr::col("x").mul(Expr::lit(3)))
            .unwrap();
        let y = s.materialized(&mut pb, "y").unwrap();
        let sum = pb.agg_block(y, AggFunc::Sum, "sum");
        pb.output("sum", sum);
        pb.build().unwrap()
    }

    #[test]
    fn chunk_size_bounds_the_streamed_working_set() {
        let graph = filter_map_sum();
        let mut inputs = QueryInputs::new();
        inputs.bind("x", (0..10_000).collect());
        let small = estimate_footprint_bytes(&graph, &inputs, 100);
        let large = estimate_footprint_bytes(&graph, &inputs, 10_000);
        assert!(
            small < large,
            "smaller chunks must shrink the estimate ({small} vs {large})"
        );
        // Breaker accumulators are scan-sized regardless of chunking, so
        // the estimate never drops below the materialized column.
        assert!(small >= 10_000 * 8);
        // And the whole thing stays within a small multiple of the input.
        assert!(large <= 8 * 10_000 * 8);
    }

    #[test]
    fn estimate_scales_with_bound_data() {
        let graph = filter_map_sum();
        let mut small_in = QueryInputs::new();
        small_in.bind("x", (0..100).collect());
        let mut big_in = QueryInputs::new();
        big_in.bind("x", (0..100_000).collect());
        let small = estimate_footprint_bytes(&graph, &small_in, 1 << 20);
        let big = estimate_footprint_bytes(&graph, &big_in, 1 << 20);
        assert!(small * 100 <= big * 2, "estimate must track the data size");
        // Unbound inputs degrade to the chunk floor, not a panic.
        let floor = estimate_footprint_bytes(&graph, &QueryInputs::new(), 1 << 20);
        assert!(floor < small);
    }
}
