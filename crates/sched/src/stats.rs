//! Scheduler-level statistics: per-tenant wait/run accounting, queue
//! depths, and admission/shedding counters.
//!
//! All times are *modeled* nanoseconds on the shared simulated timeline, so
//! same-seed runs export byte-identical JSON. Counters are cumulative
//! across [`crate::QueryScheduler::run_all`] calls on one scheduler.

use std::collections::BTreeMap;

/// Per-tenant accounting on the shared timeline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantStats {
    /// The tenant's fair-share weight.
    pub weight: f64,
    /// Queries submitted.
    pub submitted: u64,
    /// Queries that ran to completion.
    pub completed: u64,
    /// Queries admitted but failed during execution.
    pub failed: u64,
    /// Queries shed before admission (deadline unmeetable or cancelled).
    pub shed: u64,
    /// Queries rejected outright (footprint exceeds every device).
    pub rejected: u64,
    /// Total modeled ns the tenant's queries spent queued before admission.
    pub wait_ns: f64,
    /// Total modeled ns of device time charged to the tenant.
    pub run_ns: f64,
    /// The subset of [`TenantStats::run_ns`] accrued while at least one
    /// *other* tenant also had an admitted query — the denominator the
    /// fair-share guarantee is measured against.
    pub contended_run_ns: f64,
    /// Highest number of queries this tenant had queued at once.
    pub max_queue_depth: usize,
    /// Times one of this tenant's running queries was suspended by a
    /// higher-urgency query (its remaining slices parked until resume).
    pub preemptions: u64,
    /// Queries that completed *after* their own deadline (admitted in time
    /// but finished late under contention — never silent: the outcome
    /// carries `missed_deadline: true`).
    pub deadline_misses: u64,
}

/// Aggregate scheduler statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SchedulerStats {
    /// Modeled ns from the first admission to the last completion,
    /// cumulative across `run_all` calls.
    pub makespan_ns: f64,
    /// Device-time slices interleaved on the shared timeline.
    pub slices: u64,
    /// Queries admitted (reservation granted, execution started).
    pub admitted: u64,
    /// Queries that ran to completion.
    pub completed: u64,
    /// Queries admitted but failed during execution.
    pub failed: u64,
    /// Admissions that had to wait at least one slice for reservations to
    /// free (the "held at the gate" count).
    pub held: u64,
    /// Queries rejected because their footprint exceeds every device's
    /// capacity — no amount of waiting could admit them.
    pub rejected_capacity: u64,
    /// Queries shed at admission because their remaining deadline budget
    /// could not cover the cheapest modeled placement (or was already
    /// spent waiting).
    pub shed_deadline: u64,
    /// Straggler watchdogs fired across all executed queries (chunks whose
    /// modeled duration overran the configured budget multiplier).
    pub watchdog_fires: u64,
    /// Hedged duplicate chunks launched across all executed queries.
    pub hedged_launches: u64,
    /// Hedged duplicates that beat their straggling primary.
    pub hedge_wins: u64,
    /// Checksum-mismatch retransmits across all executed queries (silent
    /// transfer corruption caught by the hub's end-to-end verification).
    pub corruption_retransmits: u64,
    /// Running queries suspended so a higher-urgency (tight-deadline or
    /// starvation-horizon) query's slices could drain first.
    pub preemptions: u64,
    /// Suspended queries resumed after the urgent work drained (every
    /// preemption is eventually matched by a resume or a completion).
    pub resumed: u64,
    /// Queries that completed past their own deadline. With preemption on,
    /// urgent queries are prioritized to avoid this; any residue is
    /// surfaced on the outcome (`Completed { missed_deadline: true }`), not
    /// reported as silent success.
    pub deadline_misses: u64,
    /// Admitted queries shed because their reserved capacity vanished with
    /// a permanently dead device and no survivor could absorb the
    /// reservation (`QueryOutcome::Shed { reason: CapacityLost }`).
    pub shed_capacity_lost: u64,
    /// Permanent device deaths observed across all executed queries.
    pub device_deaths: u64,
    /// Buffers written off dead devices across all executed queries.
    pub buffers_written_off: u64,
    /// Bytes re-staged onto survivors after device deaths.
    pub restaged_bytes: u64,
    /// Devices hot-added through the health probe ramp.
    pub hot_adds: u64,
    /// Partial-progress checkpoints captured across all executed queries.
    pub checkpoints_taken: u64,
    /// Total bytes of checkpoint snapshot payload captured.
    pub checkpoint_bytes: u64,
    /// Recoveries that resumed from a validated checkpoint instead of
    /// restarting from row 0.
    pub resumes: u64,
    /// Chunks whose re-execution checkpoint resumes skipped.
    pub chunks_skipped_on_resume: u64,
    /// Checkpoints rejected at resume time (failed validation or restore),
    /// degrading recovery to a full restart.
    pub resume_validation_failures: u64,
    /// Per-tenant breakdown, keyed by tenant name (deterministic order).
    pub tenants: BTreeMap<String, TenantStats>,
}

impl SchedulerStats {
    /// Exports the stats as a deterministic JSON object (hand-rolled, like
    /// `ExecutionStats::to_json`; same seed ⇒ byte-identical string).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        s.push_str(&format!("\"makespan_ns\":{:.1}", self.makespan_ns));
        s.push_str(&format!(",\"slices\":{}", self.slices));
        s.push_str(&format!(",\"admitted\":{}", self.admitted));
        s.push_str(&format!(",\"completed\":{}", self.completed));
        s.push_str(&format!(",\"failed\":{}", self.failed));
        s.push_str(&format!(",\"held\":{}", self.held));
        s.push_str(&format!(
            ",\"rejected_capacity\":{}",
            self.rejected_capacity
        ));
        s.push_str(&format!(",\"shed_deadline\":{}", self.shed_deadline));
        s.push_str(&format!(",\"watchdog_fires\":{}", self.watchdog_fires));
        s.push_str(&format!(",\"hedged_launches\":{}", self.hedged_launches));
        s.push_str(&format!(",\"hedge_wins\":{}", self.hedge_wins));
        s.push_str(&format!(
            ",\"corruption_retransmits\":{}",
            self.corruption_retransmits
        ));
        s.push_str(&format!(",\"preemptions\":{}", self.preemptions));
        s.push_str(&format!(",\"resumed\":{}", self.resumed));
        s.push_str(&format!(",\"deadline_misses\":{}", self.deadline_misses));
        s.push_str(&format!(
            ",\"shed_capacity_lost\":{}",
            self.shed_capacity_lost
        ));
        s.push_str(&format!(",\"device_deaths\":{}", self.device_deaths));
        s.push_str(&format!(
            ",\"buffers_written_off\":{}",
            self.buffers_written_off
        ));
        s.push_str(&format!(",\"restaged_bytes\":{}", self.restaged_bytes));
        s.push_str(&format!(",\"hot_adds\":{}", self.hot_adds));
        s.push_str(&format!(
            ",\"checkpoints_taken\":{}",
            self.checkpoints_taken
        ));
        s.push_str(&format!(",\"checkpoint_bytes\":{}", self.checkpoint_bytes));
        s.push_str(&format!(",\"resumes\":{}", self.resumes));
        s.push_str(&format!(
            ",\"chunks_skipped_on_resume\":{}",
            self.chunks_skipped_on_resume
        ));
        s.push_str(&format!(
            ",\"resume_validation_failures\":{}",
            self.resume_validation_failures
        ));
        s.push_str(",\"tenants\":{");
        let mut first = true;
        for (name, t) in &self.tenants {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\"{}\":{{\"weight\":{:.3},\"submitted\":{},\"completed\":{},\
                 \"failed\":{},\"shed\":{},\"rejected\":{},\"wait_ns\":{:.1},\
                 \"run_ns\":{:.1},\"contended_run_ns\":{:.1},\"max_queue_depth\":{},\
                 \"preemptions\":{},\"deadline_misses\":{}}}",
                escape(name),
                t.weight,
                t.submitted,
                t.completed,
                t.failed,
                t.shed,
                t.rejected,
                t.wait_ns,
                t.run_ns,
                t.contended_run_ns,
                t.max_queue_depth,
                t.preemptions,
                t.deadline_misses
            ));
        }
        s.push_str("}}");
        s
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let mut stats = SchedulerStats {
            makespan_ns: 1234.5,
            slices: 7,
            admitted: 3,
            completed: 2,
            failed: 1,
            held: 1,
            rejected_capacity: 1,
            shed_deadline: 2,
            watchdog_fires: 4,
            hedged_launches: 3,
            hedge_wins: 2,
            corruption_retransmits: 5,
            preemptions: 3,
            resumed: 3,
            deadline_misses: 1,
            shed_capacity_lost: 1,
            device_deaths: 2,
            buffers_written_off: 6,
            restaged_bytes: 4096,
            hot_adds: 1,
            checkpoints_taken: 4,
            checkpoint_bytes: 2048,
            resumes: 2,
            chunks_skipped_on_resume: 9,
            resume_validation_failures: 1,
            ..Default::default()
        };
        stats.tenants.insert(
            "beta".into(),
            TenantStats {
                weight: 1.0,
                submitted: 2,
                completed: 1,
                wait_ns: 500.0,
                run_ns: 300.25,
                contended_run_ns: 100.0,
                max_queue_depth: 2,
                ..Default::default()
            },
        );
        stats.tenants.insert(
            "alpha".into(),
            TenantStats {
                weight: 2.0,
                submitted: 1,
                completed: 1,
                ..Default::default()
            },
        );
        let json = stats.to_json();
        // BTreeMap keys: alpha before beta, every run.
        assert!(json.find("\"alpha\"").unwrap() < json.find("\"beta\"").unwrap());
        assert!(json.contains("\"makespan_ns\":1234.5"));
        assert!(json.contains("\"watchdog_fires\":4"));
        assert!(json.contains("\"hedged_launches\":3"));
        assert!(json.contains("\"hedge_wins\":2"));
        assert!(json.contains("\"corruption_retransmits\":5"));
        assert!(json.contains("\"preemptions\":3"));
        assert!(json.contains("\"resumed\":3"));
        assert!(json.contains("\"deadline_misses\":1"));
        assert!(json.contains("\"shed_capacity_lost\":1"));
        assert!(json.contains("\"device_deaths\":2"));
        assert!(json.contains("\"buffers_written_off\":6"));
        assert!(json.contains("\"restaged_bytes\":4096"));
        assert!(json.contains("\"hot_adds\":1"));
        assert!(json.contains("\"checkpoints_taken\":4"));
        assert!(json.contains("\"checkpoint_bytes\":2048"));
        assert!(json.contains("\"resumes\":2"));
        assert!(json.contains("\"chunks_skipped_on_resume\":9"));
        assert!(json.contains("\"resume_validation_failures\":1"));
        assert!(json.contains("\"wait_ns\":500.0"));
        assert!(json.contains("\"contended_run_ns\":100.0"));
        assert_eq!(json, stats.to_json(), "export must be deterministic");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
