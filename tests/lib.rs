//! Integration test support library (intentionally empty).
