//! Residency-cache soak: the cross-query cache swept against fault plans,
//! eviction pressure, and every chunked execution model. Every run must be
//! reference-exact (or fail with a clean typed error under faults), warm
//! re-runs must actually hit the cache, same-seed runs must be
//! byte-identical, and clearing the cache must return every device pool —
//! regular, pinned, and the admission ledger — to zero bytes.
//!
//! The CI `residency` job shards the soak by seed through the
//! `RESIDENCY_SEED` environment variable.

use adamant::prelude::*;

const DEFAULT_SEEDS: [u64; 4] = [1, 7, 42, 1337];

/// The chunk-streaming execution models — everything but operator-at-a-time.
const CHUNKED_MODELS: [ExecutionModel; 4] = [
    ExecutionModel::Chunked,
    ExecutionModel::Pipelined,
    ExecutionModel::FourPhaseChunked,
    ExecutionModel::FourPhasePipelined,
];

fn seeds() -> Vec<u64> {
    match std::env::var("RESIDENCY_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("RESIDENCY_SEED must be an unsigned integer")],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

fn cached_engine(cache_bytes: u64, plan: Option<FaultPlan>) -> Adamant {
    let mut builder = Adamant::builder()
        .chunk_rows(500)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .residency_cache(ResidencyConfig::new(cache_bytes))
        .retry_policy(RetryPolicy {
            max_attempts: 6,
            ..Default::default()
        });
    if let Some(plan) = plan {
        builder = builder.fault_plan(0, plan);
    }
    builder.build().unwrap()
}

/// Clears the cache and asserts every pool is back to zero — nothing may
/// outlive the cache: no data bytes, no pinned staging, no admission
/// reservations backing evicted pins.
fn assert_no_leaks(engine: &mut Adamant, context: &str) {
    engine.executor_mut().clear_residency();
    for &d in engine.device_ids() {
        let dev = engine.executor().devices().get(d).unwrap();
        assert_eq!(dev.pool().used(), 0, "{context}: leaked bytes on {d}");
        assert_eq!(
            dev.pool().pinned_used(),
            0,
            "{context}: leaked pinned bytes on {d}"
        );
        assert_eq!(
            dev.pool().admission_reserved(),
            0,
            "{context}: leaked admission reservation on {d}"
        );
    }
}

/// The fault matrix applied to device 0 while the cache is live.
fn fault_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("straggler", FaultPlan::none().with_seed(seed).slowdown(4.0)),
        (
            "corruption",
            FaultPlan::none().with_seed(seed).corrupt_transfer_rate(0.1),
        ),
        (
            "transient-oom",
            FaultPlan::none().with_seed(seed).oom_on_allocation(3),
        ),
        (
            "combined",
            FaultPlan::none()
                .with_seed(seed)
                .slowdown(6.0)
                .corrupt_transfer_rate(0.05)
                .transient_exec_errors(2),
        ),
    ]
}

#[test]
fn repeated_workloads_hit_the_cache_and_stay_exact() {
    for seed in seeds() {
        let catalog = TpchGenerator::new(0.001, seed).generate();
        let reference = adamant::tpch::reference::q6(&catalog).unwrap();
        for model in CHUNKED_MODELS {
            let mut engine = cached_engine(1 << 30, None);
            let dev = engine.device_ids()[0];
            let graph = TpchQuery::Q6.plan(dev, &catalog).unwrap();
            let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
            let mut hits_by_run = Vec::new();
            for run in 0..3 {
                let (out, stats) = engine.run(&graph, &inputs, model).unwrap();
                assert_eq!(
                    adamant::tpch::queries::q6::decode(&out),
                    reference,
                    "seed {seed} {model:?} run {run}: diverged from reference"
                );
                hits_by_run.push(stats.cache_hits);
            }
            assert_eq!(
                hits_by_run[0], 0,
                "seed {seed} {model:?}: a cold run cannot hit the cache"
            );
            assert!(
                hits_by_run[1] > 0 && hits_by_run[2] > 0,
                "seed {seed} {model:?}: warm runs never hit the cache ({hits_by_run:?})"
            );
            assert_no_leaks(&mut engine, &format!("seed {seed} {model:?}"));
        }
    }
}

#[test]
fn eviction_pressure_keeps_results_exact() {
    for seed in seeds() {
        let catalog = TpchGenerator::new(0.001, seed).generate();
        let ref_q6 = adamant::tpch::reference::q6(&catalog).unwrap();
        let ref_q14 = adamant::tpch::reference::q14(&catalog).unwrap();
        // A budget below the two queries' combined working set: pinning one
        // workload must evict the other, over and over.
        let budget = (TpchQuery::Q6.input_bytes(&catalog).unwrap()
            + TpchQuery::Q14.input_bytes(&catalog).unwrap())
            / 2;
        let mut engine = cached_engine(budget, None);
        let dev = engine.device_ids()[0];
        let g6 = TpchQuery::Q6.plan(dev, &catalog).unwrap();
        let in6 = TpchQuery::Q6.bind(&catalog).unwrap();
        let g14 = TpchQuery::Q14.plan(dev, &catalog).unwrap();
        let in14 = TpchQuery::Q14.bind(&catalog).unwrap();
        let mut evictions = 0usize;
        for round in 0..3 {
            let (out, s6) = engine.run(&g6, &in6, ExecutionModel::Chunked).unwrap();
            assert_eq!(
                adamant::tpch::queries::q6::decode(&out),
                ref_q6,
                "seed {seed} round {round}: Q6 under pressure diverged"
            );
            let (out, s14) = engine.run(&g14, &in14, ExecutionModel::Chunked).unwrap();
            assert_eq!(
                adamant::tpch::queries::q14::decode(&out),
                ref_q14,
                "seed {seed} round {round}: Q14 under pressure diverged"
            );
            evictions += s6.cache_evictions + s14.cache_evictions;
        }
        assert!(
            evictions > 0,
            "seed {seed}: the alternating workloads never forced an eviction"
        );
        assert_no_leaks(&mut engine, &format!("seed {seed} pressure"));
    }
}

/// Fusion × residency: the cache pins and fingerprints *input* columns
/// only, so the intermediates a fused chain elides must never show up in
/// the pinned footprint — under eviction pressure the fused and unfused
/// runs must pin the same bytes, evict the same way, stay exact, and
/// clearing the cache must return every pool to zero either way.
#[test]
fn eviction_pressure_under_fusion_pins_only_real_inputs() {
    for seed in seeds() {
        let catalog = TpchGenerator::new(0.001, seed).generate();
        let ref_q6 = adamant::tpch::reference::q6(&catalog).unwrap();
        let ref_q14 = adamant::tpch::reference::q14(&catalog).unwrap();
        let budget = (TpchQuery::Q6.input_bytes(&catalog).unwrap()
            + TpchQuery::Q14.input_bytes(&catalog).unwrap())
            / 2;
        let sweep = |fusion: bool| -> (u64, usize, usize) {
            let mut engine = Adamant::builder()
                .chunk_rows(500)
                .fusion(fusion)
                .device(DeviceProfile::cuda_rtx2080ti())
                .device(DeviceProfile::opencl_cpu_i7())
                .residency_cache(ResidencyConfig::new(budget))
                .build()
                .unwrap();
            let dev = engine.device_ids()[0];
            let g6 = TpchQuery::Q6.plan(dev, &catalog).unwrap();
            let in6 = TpchQuery::Q6.bind(&catalog).unwrap();
            let g14 = TpchQuery::Q14.plan(dev, &catalog).unwrap();
            let in14 = TpchQuery::Q14.bind(&catalog).unwrap();
            let (mut pinned, mut evictions, mut fused_chains) = (0, 0, 0);
            for round in 0..3 {
                let (out, s6) = engine.run(&g6, &in6, ExecutionModel::Chunked).unwrap();
                assert_eq!(
                    adamant::tpch::queries::q6::decode(&out),
                    ref_q6,
                    "seed {seed} round {round} fusion={fusion}: Q6 diverged"
                );
                let (out, s14) = engine.run(&g14, &in14, ExecutionModel::Chunked).unwrap();
                assert_eq!(
                    adamant::tpch::queries::q14::decode(&out),
                    ref_q14,
                    "seed {seed} round {round} fusion={fusion}: Q14 diverged"
                );
                pinned = s14.cache_pinned_bytes;
                evictions += s6.cache_evictions + s14.cache_evictions;
                fused_chains += s6.fused_chains + s14.fused_chains;
            }
            assert_no_leaks(
                &mut engine,
                &format!("seed {seed} fusion={fusion} pressure"),
            );
            (pinned, evictions, fused_chains)
        };
        let (pinned_f, evictions_f, chains_f) = sweep(true);
        let (pinned_u, evictions_u, chains_u) = sweep(false);
        assert!(chains_f > 0, "seed {seed}: fused sweep never fused");
        assert_eq!(chains_u, 0);
        assert!(pinned_f > 0, "seed {seed}: nothing pinned under pressure");
        assert_eq!(
            pinned_f, pinned_u,
            "seed {seed}: fusion changed the pinned footprint — an elided \
             intermediate leaked into the residency cache"
        );
        // Eviction *ordering* rides the modeled clock (which fusion
        // compresses), so only the pressure itself must be preserved.
        assert!(evictions_f > 0, "seed {seed}: fused pressure never evicted");
        assert!(
            evictions_u > 0,
            "seed {seed}: unfused pressure never evicted"
        );
    }
}

/// One full cached sweep under a fault plan: cold + warm run, outcome
/// classification, leak check — returns the outcomes and wall-clock-free
/// stats JSON for determinism comparison.
fn faulted_sweep(
    catalog: &Catalog,
    plan: FaultPlan,
    model: ExecutionModel,
) -> (Vec<Result<i64, String>>, String) {
    let mut engine = cached_engine(1 << 30, Some(plan));
    let dev = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev, catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(catalog).unwrap();
    let mut outcomes = Vec::new();
    let mut jsons = Vec::new();
    for _ in 0..2 {
        match engine.run(&graph, &inputs, model) {
            Ok((out, _)) => outcomes.push(Ok(adamant::tpch::queries::q6::decode(&out))),
            Err(
                e @ (ExecError::Device(_)
                | ExecError::KernelFailed { .. }
                | ExecError::DeadlineExceeded { .. }
                | ExecError::TransferCorrupted { .. }),
            ) => outcomes.push(Err(e.to_string())),
            Err(other) => panic!("unexpected error class under faults: {other}"),
        }
        let mut stats = engine
            .executor()
            .last_run_stats()
            .expect("every run leaves stats")
            .clone();
        stats.wall_ns = 0;
        jsons.push(stats.to_json());
    }
    assert_no_leaks(&mut engine, &format!("faulted {model:?}"));
    (outcomes, jsons.join("\n"))
}

#[test]
fn faults_with_cache_stay_exact_and_deterministic() {
    for seed in seeds() {
        let catalog = TpchGenerator::new(0.001, seed).generate();
        let reference = adamant::tpch::reference::q6(&catalog).unwrap();
        for (name, plan) in fault_plans(seed) {
            for model in CHUNKED_MODELS {
                let (first, first_json) = faulted_sweep(&catalog, plan.clone(), model);
                for (run, outcome) in first.iter().enumerate() {
                    if let Ok(result) = outcome {
                        assert_eq!(
                            result, &reference,
                            "seed {seed} {name} {model:?} run {run}: survived run diverged"
                        );
                    }
                }
                // Same seed, fresh engine: byte-identical stats trajectory.
                let (second, second_json) = faulted_sweep(&catalog, plan.clone(), model);
                assert_eq!(
                    first, second,
                    "seed {seed} {name} {model:?}: outcomes flipped between identical runs"
                );
                assert_eq!(
                    first_json, second_json,
                    "seed {seed} {name} {model:?}: stats drifted between identical runs"
                );
            }
        }
    }
}

/// A cache-enabled engine and a cache-free engine must agree exactly on
/// results — the cache may only change *where bytes come from*, never what
/// the query computes.
#[test]
fn cached_and_uncached_results_agree() {
    let catalog = TpchGenerator::new(0.001, 11).generate();
    for model in CHUNKED_MODELS {
        let run = |cache: bool| -> (i64, i64) {
            let mut engine = if cache {
                cached_engine(1 << 30, None)
            } else {
                Adamant::builder()
                    .chunk_rows(500)
                    .device(DeviceProfile::cuda_rtx2080ti())
                    .device(DeviceProfile::opencl_cpu_i7())
                    .build()
                    .unwrap()
            };
            let dev = engine.device_ids()[0];
            let graph = TpchQuery::Q6.plan(dev, &catalog).unwrap();
            let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
            let (a, _) = engine.run(&graph, &inputs, model).unwrap();
            let (b, _) = engine.run(&graph, &inputs, model).unwrap();
            (
                adamant::tpch::queries::q6::decode(&a),
                adamant::tpch::queries::q6::decode(&b),
            )
        };
        let (cached_cold, cached_warm) = run(true);
        let (plain_cold, plain_warm) = run(false);
        assert_eq!(cached_cold, plain_cold, "{model:?}: cold results differ");
        assert_eq!(cached_warm, plain_warm, "{model:?}: warm results differ");
        assert_eq!(
            cached_cold, cached_warm,
            "{model:?}: cache changed the answer"
        );
    }
}
