//! Multi-query scheduler end-to-end: admission control holds an
//! over-footprint query instead of letting it OOM a running one, weighted
//! fair queuing delivers proportional device time under contention, and
//! deadline-infeasible queries are shed before wasting device time.

use adamant::prelude::*;

fn filter_map_sum(dev: DeviceId, threshold: i64, factor: i64) -> PrimitiveGraph {
    let mut pb = PlanBuilder::new(dev);
    let mut s = pb.scan("t", &["x"]);
    s.filter(&mut pb, Predicate::cmp("x", CmpOp::Ge, threshold))
        .unwrap();
    s.project(&mut pb, "y", Expr::col("x").mul(Expr::lit(factor)))
        .unwrap();
    let y = s.materialized(&mut pb, "y").unwrap();
    let sum = pb.agg_block(y, AggFunc::Sum, "sum");
    pb.output("sum", sum);
    pb.build().unwrap()
}

fn test_data(n: i64) -> Vec<i64> {
    (0..n).map(|i| (i * 37 + 11) % 500 - 250).collect()
}

fn expected_sum(data: &[i64], threshold: i64, factor: i64) -> i64 {
    data.iter()
        .filter(|&&v| v >= threshold)
        .map(|v| v * factor)
        .sum()
}

/// Two tenants share one simulated GPU whose memory fits only one query's
/// reservation at a time: the second query is *held* at admission (not
/// OOM-killed mid-flight), runs after the first frees its reservation, and
/// both produce reference-exact results. The queued tenant's wait shows up
/// in `SchedulerStats::to_json()`.
#[test]
fn admission_holds_second_query_until_reservation_frees() {
    let data = test_data(2_000);
    let mut engine = Adamant::builder()
        .chunk_rows(100)
        // Small enough that two 150 KiB reservations cannot coexist.
        .device(DeviceProfile::cuda_rtx2080ti().with_memory(256 << 10, 64 << 10))
        .build()
        .unwrap();
    let gpu = engine.device_ids()[0];
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());

    let mut session = engine.session();
    session.tenant("alpha", 1.0).tenant("beta", 1.0);
    let t1 = session.submit(
        "alpha",
        QuerySpec::new(
            filter_map_sum(gpu, -100, 2),
            inputs.clone(),
            ExecutionModel::Chunked,
        )
        .with_footprint(150 << 10),
    );
    let t2 = session.submit(
        "beta",
        QuerySpec::new(
            filter_map_sum(gpu, 0, 3),
            inputs.clone(),
            ExecutionModel::Chunked,
        )
        .with_footprint(150 << 10),
    );
    let report = session.run_all();

    let out1 = report.output(t1).expect("alpha query must complete");
    assert_eq!(out1.i64_column("sum")[0], expected_sum(&data, -100, 2));
    let out2 = report.output(t2).expect("beta query must complete");
    assert_eq!(out2.i64_column("sum")[0], expected_sum(&data, 0, 3));

    // The second query waited for the first's reservation: admission held
    // it rather than risking an OOM race.
    assert_eq!(
        report.wait_ns(t1),
        Some(0.0),
        "first admission must be free"
    );
    assert!(
        report.wait_ns(t2).unwrap() > 0.0,
        "held query must record queue wait"
    );
    let stats = report.stats();
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.completed, 2);
    assert!(stats.held >= 1, "the gate never held anyone");
    let beta = &stats.tenants["beta"];
    assert!(beta.wait_ns > 0.0);
    let json = stats.to_json();
    assert!(
        json.contains("\"beta\":{"),
        "tenant missing from JSON: {json}"
    );
    assert!(
        !json.contains(
            "\"beta\":{\"weight\":1.000,\"submitted\":1,\"completed\":1,\
                        \"failed\":0,\"shed\":0,\"rejected\":0,\"wait_ns\":0.0"
        ),
        "queued tenant's wait must be nonzero in JSON: {json}"
    );

    // No reservation outlives its query, and no bytes leak.
    let pool = engine.executor().devices().get(gpu).unwrap().pool();
    assert_eq!(pool.admission_reserved(), 0, "reservation leaked");
    assert_eq!(pool.used(), 0, "buffer bytes leaked");
}

/// A 2:1-weight tenant receives ≈2× the device time of a 1:1 tenant while
/// both are runnable, within 10% on the simulated timeline.
#[test]
fn weighted_tenants_share_device_time_proportionally() {
    let data = test_data(3_000);
    let mut engine = Adamant::builder()
        .chunk_rows(100)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap();
    let gpu = engine.device_ids()[0];
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());

    let mut session = engine.session();
    session.tenant("heavy", 2.0).tenant("light", 1.0);
    let per_tenant = 5;
    let mut tickets = Vec::new();
    for _ in 0..per_tenant {
        // Identical work for both tenants, so time ratios are meaningful.
        for tenant in ["heavy", "light"] {
            tickets.push((
                tenant,
                session.submit(
                    tenant,
                    QuerySpec::new(
                        filter_map_sum(gpu, -100, 2),
                        inputs.clone(),
                        ExecutionModel::Chunked,
                    ),
                ),
            ));
        }
    }
    let report = session.run_all();
    for (tenant, t) in &tickets {
        let out = report.output(*t).unwrap_or_else(|| {
            panic!(
                "{tenant} query {t:?} did not complete: {:?}",
                report.outcome(*t)
            )
        });
        assert_eq!(out.i64_column("sum")[0], expected_sum(&data, -100, 2));
    }

    let stats = report.stats();
    let heavy = &stats.tenants["heavy"];
    let light = &stats.tenants["light"];
    assert!(
        heavy.contended_run_ns > 0.0 && light.contended_run_ns > 0.0,
        "tenants never actually contended"
    );
    let ratio = heavy.contended_run_ns / light.contended_run_ns;
    assert!(
        (1.8..=2.2).contains(&ratio),
        "2:1 weights should yield ≈2x contended device time, got {ratio:.3} \
         (heavy {:.0} ns vs light {:.0} ns)",
        heavy.contended_run_ns,
        light.contended_run_ns
    );
    // Equal work submitted: total run time per tenant matches regardless of
    // weights; only its *placement in time* differs.
    let total_ratio = heavy.run_ns / light.run_ns;
    assert!(
        (0.99..=1.01).contains(&total_ratio),
        "equal workloads must cost equal total device time, got {total_ratio:.3}"
    );
}

/// Weighted fair sharing survives a straggling device: with the primary
/// device running 2× slow, every chunk overruns a tightened watchdog budget
/// and hedges onto the second device — and because hedge duplicates are
/// charged to the *owning* query's stream, the 2:1 contended-time ratio
/// still holds and the straggler counters surface in the scheduler stats.
#[test]
fn fair_share_holds_under_straggling_device() {
    let data = test_data(3_000);
    let mut engine = Adamant::builder()
        .chunk_rows(100)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        // A chronic 2× straggler: slow enough to overrun the 1.5× watchdog
        // budget on every chunk, mild enough to stay below the slow-open
        // breaker's trip ratio — so the device keeps straggling all run.
        .fault_plan(0, FaultPlan::none().slowdown(2.0))
        .watchdog_multiplier(1.5)
        .build()
        .unwrap();
    let gpu = engine.device_ids()[0];
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());

    let mut session = engine.session();
    session.tenant("heavy", 2.0).tenant("light", 1.0);
    let per_tenant = 5;
    let mut tickets = Vec::new();
    for _ in 0..per_tenant {
        for tenant in ["heavy", "light"] {
            tickets.push((
                tenant,
                session.submit(
                    tenant,
                    QuerySpec::new(
                        filter_map_sum(gpu, -100, 2),
                        inputs.clone(),
                        ExecutionModel::Chunked,
                    ),
                ),
            ));
        }
    }
    let report = session.run_all();
    for (tenant, t) in &tickets {
        let out = report.output(*t).unwrap_or_else(|| {
            panic!(
                "{tenant} query {t:?} did not complete: {:?}",
                report.outcome(*t)
            )
        });
        assert_eq!(out.i64_column("sum")[0], expected_sum(&data, -100, 2));
    }

    let stats = report.stats();
    assert!(
        stats.watchdog_fires >= 1,
        "straggling chunks never tripped the watchdog"
    );
    assert!(
        stats.hedged_launches >= 1,
        "overrunning chunks never hedged onto the healthy device"
    );
    let json = stats.to_json();
    assert!(
        json.contains("\"watchdog_fires\":") && json.contains("\"hedged_launches\":"),
        "straggler counters missing from scheduler JSON: {json}"
    );

    let heavy = &stats.tenants["heavy"];
    let light = &stats.tenants["light"];
    assert!(
        heavy.contended_run_ns > 0.0 && light.contended_run_ns > 0.0,
        "tenants never actually contended"
    );
    let ratio = heavy.contended_run_ns / light.contended_run_ns;
    assert!(
        (1.8..=2.2).contains(&ratio),
        "2:1 weights should survive a straggling device, got {ratio:.3} \
         (heavy {:.0} ns vs light {:.0} ns)",
        heavy.contended_run_ns,
        light.contended_run_ns
    );
    // Hedge duplicates are billed to their owners, not dropped on the
    // floor: every query completed, so both tenants paid real device time.
    // (Admission may place some queries on the healthy device outright, so
    // equal workloads need not cost equal totals here — the fair-share
    // guarantee is the contended ratio above.)
    assert_eq!(heavy.completed, per_tenant as u64);
    assert_eq!(light.completed, per_tenant as u64);
    assert!(heavy.run_ns > 0.0 && light.run_ns > 0.0);
}

/// A query whose deadline cannot cover even the cheapest modeled placement
/// is shed at admission; a generous deadline sails through. Cancelling a
/// queued query sheds it without running.
#[test]
fn infeasible_deadlines_and_cancellations_shed_at_admission() {
    let data = test_data(500);
    let mut engine = Adamant::builder()
        .chunk_rows(100)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap();
    let gpu = engine.device_ids()[0];
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());

    let cancelled = CancelToken::new();
    cancelled.cancel();

    let mut session = engine.session();
    let doomed = session.submit(
        "t",
        QuerySpec::new(
            filter_map_sum(gpu, 0, 2),
            inputs.clone(),
            ExecutionModel::Chunked,
        )
        // Far below any modeled transfer cost: unmeetable from the start.
        .with_deadline_ns(0.5),
    );
    let fine = session.submit(
        "t",
        QuerySpec::new(
            filter_map_sum(gpu, 0, 2),
            inputs.clone(),
            ExecutionModel::Chunked,
        )
        .with_deadline_ns(1e12),
    );
    let dropped = session.submit(
        "t",
        QuerySpec::new(
            filter_map_sum(gpu, 0, 2),
            inputs.clone(),
            ExecutionModel::Chunked,
        )
        .with_cancel(cancelled),
    );
    let report = session.run_all();

    assert!(
        matches!(report.outcome(doomed), Some(QueryOutcome::Shed { .. })),
        "unmeetable deadline must shed, got {:?}",
        report.outcome(doomed)
    );
    assert!(
        matches!(report.outcome(dropped), Some(QueryOutcome::Shed { .. })),
        "cancelled query must shed, got {:?}",
        report.outcome(dropped)
    );
    let out = report.output(fine).expect("feasible query must complete");
    assert_eq!(out.i64_column("sum")[0], expected_sum(&data, 0, 2));
    assert_eq!(report.stats().shed_deadline, 1);
    assert_eq!(report.stats().tenants["t"].shed, 2);
}

/// A query whose footprint exceeds every device's capacity is rejected
/// outright — waiting can never admit it — while a fitting query on the
/// same session proceeds.
#[test]
fn oversized_footprint_is_rejected_not_queued_forever() {
    let data = test_data(300);
    let mut engine = Adamant::builder()
        .chunk_rows(100)
        .device(DeviceProfile::cuda_rtx2080ti().with_memory(128 << 10, 32 << 10))
        .build()
        .unwrap();
    let gpu = engine.device_ids()[0];
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());

    let mut session = engine.session();
    let whale = session.submit(
        "t",
        QuerySpec::new(
            filter_map_sum(gpu, 0, 2),
            inputs.clone(),
            ExecutionModel::Chunked,
        )
        .with_footprint(1 << 30),
    );
    let minnow = session.submit(
        "t",
        QuerySpec::new(
            filter_map_sum(gpu, 0, 2),
            inputs.clone(),
            ExecutionModel::Chunked,
        ),
    );
    let report = session.run_all();
    assert!(
        matches!(report.outcome(whale), Some(QueryOutcome::Rejected { .. })),
        "over-capacity footprint must reject, got {:?}",
        report.outcome(whale)
    );
    let out = report.output(minnow).expect("small query must complete");
    assert_eq!(out.i64_column("sum")[0], expected_sum(&data, 0, 2));
    assert_eq!(report.stats().rejected_capacity, 1);
}
