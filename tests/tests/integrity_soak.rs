//! Integrity soak: straggler and silent-corruption fault plans swept across
//! every chunked execution model. Each run must either match the fault-free
//! reference exactly or fail with a clean typed error — never panic, never
//! return silently corrupted data — and always return every device pool to
//! zero bytes. Same-seed runs must be byte-identical.
//!
//! Also hosts the end-to-end acceptance scenario for the robustness layer
//! (watchdog + hedged chunks + checksum retransmits) and the latency-aware
//! half-open probe placement test.
//!
//! The CI `integrity` job shards the soak by seed through the
//! `INTEGRITY_SEED` environment variable.

use adamant::prelude::*;

const DEFAULT_SEEDS: [u64; 3] = [1, 7, 42];

/// The chunk-streaming execution models — everything but operator-at-a-time,
/// which has no chunk loop for the watchdog to supervise.
const CHUNKED_MODELS: [ExecutionModel; 4] = [
    ExecutionModel::Chunked,
    ExecutionModel::Pipelined,
    ExecutionModel::FourPhaseChunked,
    ExecutionModel::FourPhasePipelined,
];

fn seeds() -> Vec<u64> {
    match std::env::var("INTEGRITY_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("INTEGRITY_SEED must be an unsigned integer")],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

/// The straggler × corruption fault matrix applied to device 0.
fn fault_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("straggler", FaultPlan::none().with_seed(seed).slowdown(4.0)),
        (
            "stalls",
            FaultPlan::none()
                .with_seed(seed)
                .stall_on_exec(3)
                .stall_on_transfer(2),
        ),
        (
            "corruption",
            FaultPlan::none().with_seed(seed).corrupt_transfer_rate(0.1),
        ),
        (
            "combined",
            FaultPlan::none()
                .with_seed(seed)
                .slowdown(8.0)
                .stall_on_exec(2)
                .corrupt_transfer_rate(0.05),
        ),
    ]
}

/// One engine under a fault plan; returns the run's outcome and the
/// (wall-clock-free) stats JSON of the attempt.
fn soak_run(
    catalog: &Catalog,
    plan: FaultPlan,
    model: ExecutionModel,
    hedging: bool,
) -> (Result<i64, ExecError>, String) {
    let mut builder = Adamant::builder()
        .chunk_rows(500)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .fault_plan(0, plan)
        .retry_policy(RetryPolicy {
            max_attempts: 6,
            ..Default::default()
        });
    if !hedging {
        builder = builder.no_hedging();
    }
    let mut engine = builder.build().unwrap();
    let dev = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev, catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(catalog).unwrap();
    let outcome = engine
        .run(&graph, &inputs, model)
        .map(|(out, _)| adamant::tpch::queries::q6::decode(&out));

    // Whatever happened, nothing may leak.
    for &d in engine.device_ids() {
        let pool = engine.executor().devices().get(d).unwrap();
        assert_eq!(
            pool.pool().used(),
            0,
            "{model:?}: leaked {} bytes on {d}",
            pool.pool().used()
        );
        assert_eq!(
            pool.pool().pinned_used(),
            0,
            "{model:?}: leaked pinned bytes on {d}"
        );
    }
    let mut stats = engine
        .executor()
        .last_run_stats()
        .expect("every run leaves stats")
        .clone();
    stats.wall_ns = 0;
    (outcome, stats.to_json())
}

#[test]
fn seeded_integrity_soak_across_chunked_models() {
    let catalog = TpchGenerator::new(0.001, 5).generate();
    let reference = adamant::tpch::reference::q6(&catalog).unwrap();
    for seed in seeds() {
        for (name, plan) in fault_plans(seed) {
            for model in CHUNKED_MODELS {
                let (first, first_json) = soak_run(&catalog, plan.clone(), model, true);
                match &first {
                    Ok(result) => assert_eq!(
                        result, &reference,
                        "seed {seed} {name} {model:?}: survived run diverged from reference"
                    ),
                    Err(
                        ExecError::Device(_)
                        | ExecError::KernelFailed { .. }
                        | ExecError::DeadlineExceeded { .. }
                        | ExecError::TransferCorrupted { .. },
                    ) => {} // clean, typed failure is acceptable under faults
                    Err(other) => {
                        panic!("seed {seed} {name} {model:?}: unexpected error class: {other}")
                    }
                }
                // Same seed, fresh engine: identical outcome and stats.
                let (second, second_json) = soak_run(&catalog, plan.clone(), model, true);
                assert_eq!(
                    first.is_ok(),
                    second.is_ok(),
                    "seed {seed} {name} {model:?}: outcome flipped between identical runs"
                );
                if let (Ok(a), Ok(b)) = (&first, &second) {
                    assert_eq!(a, b, "seed {seed} {name} {model:?}: results differ");
                }
                assert_eq!(
                    first_json, second_json,
                    "seed {seed} {name} {model:?}: stats drifted between identical runs"
                );
            }
        }
    }
}

/// Distinct seeds must actually produce distinct corruption schedules
/// somewhere in the sweep — otherwise the matrix tests one schedule n times.
#[test]
fn distinct_seeds_vary_the_schedule() {
    let catalog = TpchGenerator::new(0.001, 5).generate();
    let jsons: Vec<String> = DEFAULT_SEEDS
        .iter()
        .map(|&seed| {
            let plan = FaultPlan::none()
                .with_seed(seed)
                .slowdown(2.0)
                .corrupt_transfer_rate(0.1);
            soak_run(&catalog, plan, ExecutionModel::Chunked, true).1
        })
        .collect();
    assert!(
        jsons.windows(2).any(|w| w[0] != w[1]),
        "all seeds produced identical runs — seeding is broken"
    );
}

/// The acceptance scenario of the robustness tentpole: a device that both
/// straggles (8× slowdown plus a hard stall) and silently corrupts a
/// transfer still completes TPC-H Q6 reference-exact, because
///
/// * the watchdog hedges the stalled chunk onto the healthy device and the
///   hedge wins the race (`hedge_wins >= 1`);
/// * the hub's end-to-end checksum catches the corrupted transfer and
///   retransmits it (`corruption_retransmits >= 1`);
/// * the chronic overruns trip the slow-open breaker;
///
/// and the hedged run's simulated makespan beats the identical run with
/// hedging disabled. Nothing leaks, and the whole scenario is byte-stable.
#[test]
fn hedge_rescues_straggler_and_checksums_catch_corruption() {
    let catalog = TpchGenerator::new(0.001, 5).generate();
    let reference = adamant::tpch::reference::q6(&catalog).unwrap();
    let plan = FaultPlan::none()
        .slowdown(8.0)
        .stall_on_exec(5)
        .corrupt_on_place(2);

    let run = |hedging: bool| -> (i64, ExecutionStats) {
        let mut builder = Adamant::builder()
            .chunk_rows(500)
            .device(DeviceProfile::cuda_rtx2080ti())
            .device(DeviceProfile::opencl_cpu_i7())
            .fault_plan(0, plan.clone());
        if !hedging {
            builder = builder.no_hedging();
        }
        let mut engine = builder.build().unwrap();
        let dev = engine.device_ids()[0];
        let graph = TpchQuery::Q6.plan(dev, &catalog).unwrap();
        let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
        let (out, stats) = engine
            .run(&graph, &inputs, ExecutionModel::Chunked)
            .unwrap();
        for &d in engine.device_ids() {
            let pool = engine.executor().devices().get(d).unwrap();
            assert_eq!(pool.pool().used(), 0, "hedging={hedging}: leak on {d}");
            assert_eq!(
                pool.pool().pinned_used(),
                0,
                "hedging={hedging}: pinned leak on {d}"
            );
        }
        (adamant::tpch::queries::q6::decode(&out), stats)
    };

    let (result, stats) = run(true);
    assert_eq!(result, reference, "hedged run diverged from reference");
    assert!(stats.watchdog_fires >= 1, "watchdog never fired");
    assert!(stats.hedged_launches >= 1, "no hedge launched");
    assert!(
        stats.hedge_wins >= 1,
        "hedge never beat the stalled primary"
    );
    assert!(
        stats.corruption_retransmits >= 1,
        "checksum mismatch was not caught and retransmitted"
    );
    assert!(
        stats.breaker_trips >= 1,
        "chronic overruns should trip the slow-open breaker"
    );
    assert!(
        stats.to_json().contains("\"hedge_wins\":"),
        "hedge counters missing from exported stats"
    );

    let (baseline_result, baseline_stats) = run(false);
    assert_eq!(baseline_result, reference, "unhedged run diverged");
    assert_eq!(
        baseline_stats.hedged_launches, 0,
        "no_hedging run still hedged"
    );
    assert!(
        stats.total_ns < baseline_stats.total_ns,
        "hedging did not shorten the simulated makespan: hedged {} >= unhedged {}",
        stats.total_ns,
        baseline_stats.total_ns
    );

    // Same faults, fresh engine: the whole rescue is deterministic.
    let (result2, mut stats2) = run(true);
    let mut stats1 = stats;
    stats1.wall_ns = 0;
    stats2.wall_ns = 0;
    assert_eq!(result2, result, "hedged rescue result drifted");
    assert_eq!(
        stats1.to_json(),
        stats2.to_json(),
        "hedged rescue stats drifted between identical runs"
    );
}

/// Half-open recovery probes ride the *cheapest* eligible pipeline, not
/// merely the first one that touches the device. The expensive first
/// pipeline needs a kernel that is broken on the recovering device, so if
/// the probe were still granted first-come-first-served the probe would
/// strike the broken kernel and burn retries; riding the cheap second
/// pipeline it succeeds untouched.
#[test]
fn half_open_probe_rides_cheapest_pipeline() {
    let data: Vec<i64> = (0..200).map(|i| (i * 37 + 11) % 500 - 250).collect();
    let small: Vec<i64> = (0..200).map(|i| i % 17).collect();
    let mut engine = Adamant::builder()
        .chunk_rows(64)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        // Every filter flavour is broken on dev0: a probe that lands on the
        // big filtering pipeline cannot succeed.
        .fault_plan(
            0,
            FaultPlan::none()
                .broken_kernel("filter_bitmap")
                .broken_kernel("filter_bitmap_col")
                .broken_kernel("filter_position"),
        )
        .health_policy(HealthPolicy {
            cooldown_queries: 1,
            ..HealthPolicy::default()
        })
        .build()
        .unwrap();
    let dev0 = engine.device_ids()[0];

    // Trip dev0's breaker (a streak across two distinct kernels), then tick
    // the cool-down so the next query admits a half-open probe.
    let health = engine.executor_mut().health_mut();
    health.record_kernel_failure(dev0, "k_a", 100.0);
    health.record_kernel_failure(dev0, "k_b", 100.0);
    assert!(health.is_quarantined(dev0), "breaker did not trip");
    // First tick absorbs the tripping query (it doesn't count toward the
    // cool-down); the second elapses the one-query cool-down.
    health.on_query_completed();
    health.on_query_completed();
    assert!(health.is_half_open(dev0), "cool-down did not elapse");

    // Pipeline 1 (first, expensive): scan → filter → project → agg.
    // Pipeline 2 (second, cheap): scan → materialize → agg.
    let mut pb = PlanBuilder::new(dev0);
    let mut big = pb.scan("t", &["x"]);
    big.filter(&mut pb, Predicate::cmp("x", CmpOp::Ge, 0))
        .unwrap();
    big.project(&mut pb, "y", Expr::col("x").mul(Expr::lit(2)))
        .unwrap();
    let y = big.materialized(&mut pb, "y").unwrap();
    let sum_big = pb.agg_block(y, AggFunc::Sum, "sum_big");
    pb.output("sum_big", sum_big);
    let mut cheap = pb.scan("u", &["z"]);
    let z = cheap.materialized(&mut pb, "z").unwrap();
    let sum_cheap = pb.agg_block(z, AggFunc::Sum, "sum_cheap");
    pb.output("sum_cheap", sum_cheap);
    let graph = pb.build().unwrap();
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());
    inputs.bind("z", small.clone());

    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    let expected_big: i64 = data.iter().filter(|&&v| v >= 0).map(|v| v * 2).sum();
    let expected_cheap: i64 = small.iter().sum();
    assert_eq!(out.i64_column("sum_big")[0], expected_big);
    assert_eq!(out.i64_column("sum_cheap")[0], expected_cheap);

    // The probe rode the cheap pipeline: it succeeded without ever touching
    // dev0's broken filter kernels, and the big pipeline was shed to the
    // healthy device up front instead of burning retries.
    assert_eq!(stats.probe_successes, 1, "probe did not succeed cleanly");
    assert_eq!(stats.retries, 0, "probe struck the expensive pipeline");
    assert_eq!(
        engine
            .executor()
            .devices()
            .get(dev0)
            .unwrap()
            .fault_counters()
            .broken_kernel_hits,
        0,
        "a broken filter kernel ran on dev0 — probe was misplaced"
    );
    assert!(
        stats.quarantine_skips >= 1,
        "the non-probe pipeline should have been shed off the half-open device"
    );
    assert!(
        !engine.health().is_quarantined(dev0),
        "successful probe should re-close the breaker"
    );
}
