//! HASH_AGG vs SORT_AGG: Table I offers two aggregation strategies; both
//! must produce identical group-by results.

use adamant::prelude::*;
use adamant::storage::rng::Rng;

fn run_hash_path(keys: &[i64], vals: &[i64]) -> (Vec<i64>, Vec<i64>) {
    let mut engine = Adamant::builder()
        .chunk_rows(64)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    let mut pb = PlanBuilder::new(dev);
    let mut s = pb.scan("t", &["k", "v"]);
    let ht = s
        .hash_agg(&mut pb, "k", &[], &[(AggFunc::Sum, "v")], 16)
        .unwrap();
    let groups = pb.group_result(ht, 0, 1);
    let perm = pb.sort(&[(groups.keys, false)]);
    let gk = pb.take(groups.keys, perm);
    let gs = pb.take(groups.states[0], perm);
    pb.output("k", gk);
    pb.output("s", gs);
    let graph = pb.build().unwrap();
    let mut inputs = QueryInputs::new();
    inputs.bind("k", keys.to_vec());
    inputs.bind("v", vals.to_vec());
    let (out, _) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    (out.i64_column("k").to_vec(), out.i64_column("s").to_vec())
}

fn run_sort_path(keys: &[i64], vals: &[i64]) -> (Vec<i64>, Vec<i64>) {
    let mut engine = Adamant::builder()
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    let mut pb = PlanBuilder::new(dev);
    let mut s = pb.scan("t", &["k", "v"]);
    let k = s.materialized(&mut pb, "k").unwrap();
    let v = s.materialized(&mut pb, "v").unwrap();
    let (gk, gs) = pb.sort_agg(k, v, AggFunc::Sum);
    pb.output("k", gk);
    pb.output("s", gs);
    let graph = pb.build().unwrap();
    let mut inputs = QueryInputs::new();
    inputs.bind("k", keys.to_vec());
    inputs.bind("v", vals.to_vec());
    // SORT is order-sensitive: run whole-input.
    let (out, _) = engine
        .run(&graph, &inputs, ExecutionModel::OperatorAtATime)
        .unwrap();
    (out.i64_column("k").to_vec(), out.i64_column("s").to_vec())
}

#[test]
fn both_paths_agree_on_fixed_data() {
    let keys = vec![3, 1, 2, 3, 1, 3];
    let vals = vec![10, 20, 30, 40, 50, 60];
    let hash = run_hash_path(&keys, &vals);
    let sorted = run_sort_path(&keys, &vals);
    assert_eq!(hash, sorted);
    assert_eq!(hash.0, vec![1, 2, 3]);
    assert_eq!(hash.1, vec![70, 30, 110]);
}

#[test]
fn both_paths_agree_on_empty() {
    let hash = run_hash_path(&[], &[]);
    let sorted = run_sort_path(&[], &[]);
    assert_eq!(hash, sorted);
    assert!(hash.0.is_empty());
}

/// Randomized equivalence, deterministic seeds: any failing case names its
/// seed in the assertion message and reproduces exactly.
#[test]
fn hash_and_sort_aggregation_equivalent() {
    for case in 0..24u64 {
        let mut rng = Rng::new(0xA_66E0 + case);
        let n = rng.gen_range(0usize..200);
        let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0i64..15)).collect();
        let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(-50i64..50)).collect();
        assert_eq!(
            run_hash_path(&keys, &vals),
            run_sort_path(&keys, &vals),
            "case {case}"
        );
    }
}
