//! Checkpointed partial-progress recovery: seeded checkpoint × death ×
//! chaos soak. With checkpoints enabled the engine snapshots progress at
//! pipeline-breaker and chunk-interval boundaries; a permanent device
//! death mid-query must resume from the last validated boundary — strictly
//! fewer re-executed chunks than the legacy restart-from-row-0 — while
//! staying reference-exact under every execution model, leaking zero
//! bytes (checkpoint storage included), and degrading to a full restart
//! with a typed stat when the snapshot is corrupted.
//!
//! The CI `recovery` job shards the seeded soak by seed through the
//! `RECOVERY_SEED` environment variable (mirroring `chaos`/`device-loss`).

use adamant::prelude::*;

const DEFAULT_SEEDS: [u64; 4] = [1, 7, 42, 1337];

/// The chunk-streaming execution models — everything but operator-at-a-time.
const CHUNKED_MODELS: [ExecutionModel; 4] = [
    ExecutionModel::Chunked,
    ExecutionModel::Pipelined,
    ExecutionModel::FourPhaseChunked,
    ExecutionModel::FourPhasePipelined,
];

fn seeds() -> Vec<u64> {
    match std::env::var("RECOVERY_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("RECOVERY_SEED must be an unsigned integer")],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

/// Zero-leak check over the devices still plugged in. Dropping the
/// residency cache first means any surviving bytes would be genuine leaks
/// — including anything a checkpoint capture or resume left behind.
fn assert_no_leaks(engine: &mut Adamant, context: &str) {
    engine.executor_mut().clear_residency();
    let live: Vec<DeviceId> = engine.executor().devices().ids();
    for d in live {
        let dev = engine.executor().devices().get(d).unwrap();
        assert_eq!(dev.pool().used(), 0, "{context}: leaked bytes on {d}");
        assert_eq!(
            dev.pool().pinned_used(),
            0,
            "{context}: leaked pinned bytes on {d}"
        );
        assert_eq!(
            dev.pool().admission_reserved(),
            0,
            "{context}: leaked admission reservation on {d}"
        );
    }
}

fn two_device_engine(plan: FaultPlan, checkpoints: Option<CheckpointConfig>) -> Adamant {
    let mut b = Adamant::builder()
        .chunk_rows(500)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .fault_plan(0, plan)
        .retry_policy(RetryPolicy {
            max_attempts: 6,
            ..Default::default()
        });
    if let Some(cfg) = checkpoints {
        b = b.checkpoints(cfg);
    }
    b.build().unwrap()
}

/// Device-0 time of a fault-free Q6 run under `model` — the clock the
/// death triggers below are placed on.
fn clean_q6_ns(catalog: &Catalog, model: ExecutionModel) -> f64 {
    let mut engine = two_device_engine(FaultPlan::none(), None);
    let dev0 = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev0, catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(catalog).unwrap();
    engine.run(&graph, &inputs, model).unwrap();
    engine
        .executor()
        .devices()
        .get(dev0)
        .unwrap()
        .clock()
        .total_ns()
}

/// Acceptance: for a death after ≥50% progress, checkpoint-resume
/// re-executes strictly fewer chunks than restart-from-zero, under every
/// chunked execution model, with reference-exact results both ways.
#[test]
fn checkpoint_resume_reexecutes_fewer_chunks_than_restart() {
    let catalog = TpchGenerator::new(0.001, 7).generate();
    let reference = adamant::tpch::reference::q6(&catalog).unwrap();
    for model in CHUNKED_MODELS {
        let die_at = clean_q6_ns(&catalog, model) * 0.75;

        // Legacy behavior: checkpoints off, recovery restarts from row 0.
        let mut restart = two_device_engine(FaultPlan::none().die_at_ns(die_at), None);
        let dev0 = restart.device_ids()[0];
        let graph = TpchQuery::Q6.plan(dev0, &catalog).unwrap();
        let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
        let (out, base) = restart.run(&graph, &inputs, model).unwrap();
        assert_eq!(adamant::tpch::queries::q6::decode(&out), reference);
        assert_eq!(base.device_deaths, 1, "{model:?}: the death must fire");
        assert_eq!(base.resumes, 0);
        assert_no_leaks(&mut restart, "restart-from-zero");

        // Checkpointed: capture at every chunk boundary, resume on death.
        let mut ckpt = two_device_engine(
            FaultPlan::none().die_at_ns(die_at),
            Some(CheckpointConfig::enabled().cost_factor(0.0)),
        );
        let (out, stats) = ckpt.run(&graph, &inputs, model).unwrap();
        assert_eq!(
            adamant::tpch::queries::q6::decode(&out),
            reference,
            "{model:?}: checkpoint resume diverged from reference"
        );
        assert_eq!(stats.device_deaths, 1, "{model:?}: the death must fire");
        assert!(stats.checkpoints_taken >= 1, "{model:?}: no snapshot taken");
        assert!(stats.checkpoint_bytes > 0);
        assert!(stats.resumes >= 1, "{model:?}: recovery did not resume");
        assert!(
            stats.chunks_skipped_on_resume > 0,
            "{model:?}: the resume skipped nothing"
        );
        assert_eq!(stats.resume_validation_failures, 0);
        assert!(
            stats.chunks_processed < base.chunks_processed,
            "{model:?}: resume must re-execute strictly fewer chunks \
             ({} vs {} restarted)",
            stats.chunks_processed,
            base.chunks_processed
        );
        assert_no_leaks(&mut ckpt, "checkpoint resume");
    }
}

/// Fusion × checkpoints: chunk-interval boundaries come from the scan
/// chunker, not from the kernel structure, so fusing a chain must not move
/// the grid that checkpoints are cut on or that `ResumeCursor` high-water
/// rows validate against. A resume-after-death with fusion on (the
/// default) must be reference-exact, its skipped-chunk count must be
/// consistent with the grid (positive, and strictly below a clean run's
/// chunk total), and the grid itself must be identical to the unfused one.
#[test]
fn checkpoint_resume_with_fusion_is_exact_on_the_same_chunk_grid() {
    let catalog = TpchGenerator::new(0.001, 7).generate();
    let reference = adamant::tpch::reference::q6(&catalog).unwrap();
    for model in CHUNKED_MODELS {
        let run_one = |fusion: bool| -> (ExecutionStats, usize) {
            let build = |plan: FaultPlan, ckpt: Option<CheckpointConfig>| {
                let mut b = Adamant::builder()
                    .chunk_rows(500)
                    .fusion(fusion)
                    .device(DeviceProfile::cuda_rtx2080ti())
                    .device(DeviceProfile::opencl_cpu_i7())
                    .fault_plan(0, plan)
                    .retry_policy(RetryPolicy {
                        max_attempts: 6,
                        ..Default::default()
                    });
                if let Some(cfg) = ckpt {
                    b = b.checkpoints(cfg);
                }
                b.build().unwrap()
            };
            // The death fires on this configuration's *own* clock (a fused
            // chain compresses device time, so 75% means 75% of its run).
            let mut clean = build(FaultPlan::none(), None);
            let dev0 = clean.device_ids()[0];
            let graph = TpchQuery::Q6.plan(dev0, &catalog).unwrap();
            let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
            let (_, clean_stats) = clean.run(&graph, &inputs, model).unwrap();
            let clean_chunks = clean_stats.chunks_processed;
            let die_at = clean
                .executor()
                .devices()
                .get(dev0)
                .unwrap()
                .clock()
                .total_ns()
                * 0.75;

            let mut engine = build(
                FaultPlan::none().die_at_ns(die_at),
                Some(CheckpointConfig::enabled().cost_factor(0.0)),
            );
            let (out, stats) = engine.run(&graph, &inputs, model).unwrap();
            assert_eq!(
                adamant::tpch::queries::q6::decode(&out),
                reference,
                "{model:?} fusion={fusion}: resume diverged from reference"
            );
            assert_eq!(stats.device_deaths, 1, "{model:?} fusion={fusion}");
            assert!(
                stats.resumes >= 1,
                "{model:?} fusion={fusion}: recovery did not resume"
            );
            assert!(
                stats.chunks_skipped_on_resume > 0,
                "{model:?} fusion={fusion}: the resume skipped nothing"
            );
            assert!(
                stats.chunks_skipped_on_resume < clean_chunks,
                "{model:?} fusion={fusion}: skipped {} of only {} grid chunks",
                stats.chunks_skipped_on_resume,
                clean_chunks
            );
            assert_eq!(stats.resume_validation_failures, 0);
            assert_no_leaks(&mut engine, "fused checkpoint resume");
            (stats, clean_chunks)
        };
        let (fused, fused_grid) = run_one(true);
        let (unfused, unfused_grid) = run_one(false);
        assert!(
            fused.fused_chains >= 1,
            "{model:?}: the resumed run never fused"
        );
        assert_eq!(unfused.fused_chains, 0);
        assert_eq!(
            fused_grid, unfused_grid,
            "{model:?}: fusion moved the chunk grid"
        );
    }
}

/// Operator-at-a-time has no chunk boundaries; checkpoints are captured at
/// pipeline-breaker boundaries instead, and a resume skips the completed
/// pipelines — including restoring a hash-join build table (a `Generic`
/// device payload) onto the survivor.
#[test]
fn operator_at_a_time_resumes_at_pipeline_boundaries() {
    let catalog = TpchGenerator::new(0.001, 7).generate();
    let reference = adamant::tpch::reference::q3(&catalog).unwrap();
    let die_at = {
        let mut engine = two_device_engine(FaultPlan::none(), None);
        let dev0 = engine.device_ids()[0];
        let graph = TpchQuery::Q3.plan(dev0, &catalog).unwrap();
        let inputs = TpchQuery::Q3.bind(&catalog).unwrap();
        engine
            .run(&graph, &inputs, ExecutionModel::OperatorAtATime)
            .unwrap();
        let clean = engine
            .executor()
            .devices()
            .get(dev0)
            .unwrap()
            .clock()
            .total_ns();
        clean * 0.9
    };
    let mut engine = two_device_engine(
        FaultPlan::none().die_at_ns(die_at),
        Some(CheckpointConfig::enabled().cost_factor(0.0)),
    );
    let dev0 = engine.device_ids()[0];
    let graph = TpchQuery::Q3.plan(dev0, &catalog).unwrap();
    let inputs = TpchQuery::Q3.bind(&catalog).unwrap();
    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::OperatorAtATime)
        .unwrap();
    assert_eq!(
        adamant::tpch::queries::q3::decode(&out),
        reference,
        "operator-at-a-time checkpoint resume diverged"
    );
    assert_eq!(stats.device_deaths, 1);
    assert!(stats.checkpoints_taken >= 1);
    assert!(stats.resumes >= 1, "death at 90% must resume, not restart");
    assert_no_leaks(&mut engine, "operator-at-a-time resume");
}

/// Scripted checkpoint corruption (`FaultPlan::corrupt_checkpoint`): every
/// snapshot the doomed device observes is damaged in flight, so resume-time
/// validation must reject it and recovery degrades to the full restart —
/// with the typed stat, and never a wrong answer.
#[test]
fn corrupted_checkpoint_degrades_to_full_restart() {
    let catalog = TpchGenerator::new(0.001, 42).generate();
    let reference = adamant::tpch::reference::q6(&catalog).unwrap();
    let die_at = clean_q6_ns(&catalog, ExecutionModel::Chunked) * 0.75;
    let plan = (1u64..=64).fold(FaultPlan::none().die_at_ns(die_at), |p, n| {
        p.corrupt_checkpoint(n)
    });
    let mut engine = two_device_engine(plan, Some(CheckpointConfig::enabled().cost_factor(0.0)));
    let dev0 = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev0, &catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(
        adamant::tpch::queries::q6::decode(&out),
        reference,
        "corrupted checkpoint must never change the answer"
    );
    assert_eq!(stats.device_deaths, 1);
    assert!(stats.checkpoints_taken >= 1, "captures still happen");
    assert_eq!(stats.resumes, 0, "a corrupt snapshot must not be resumed");
    assert!(
        stats.resume_validation_failures >= 1,
        "the rejection must be counted"
    );
    assert_no_leaks(&mut engine, "corrupted checkpoint");
}

/// One engine lifetime under a checkpoint × death × chaos plan: three
/// back-to-back runs, reference-exact or typed error, zero leaks.
fn recovery_sweep(
    seed: u64,
    name: &str,
    plan: FaultPlan,
    model: ExecutionModel,
    catalog: &Catalog,
    reference: i64,
) -> (Vec<Result<i64, String>>, String) {
    let mut engine = Adamant::builder()
        .chunk_rows(500)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .residency_cache(ResidencyConfig::new(1 << 30))
        .checkpoints(
            CheckpointConfig::enabled()
                .chunk_interval(2)
                .cost_factor(0.5),
        )
        .fault_plan(0, plan)
        .retry_policy(RetryPolicy {
            max_attempts: 6,
            ..Default::default()
        })
        .build()
        .unwrap();
    let dev0 = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev0, catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(catalog).unwrap();
    let mut outcomes = Vec::new();
    let mut stats_json = String::new();
    for run in 0..3 {
        let context = format!("seed {seed} {name} {model:?} run {run}");
        match engine.run(&graph, &inputs, model) {
            Ok((out, stats)) => {
                let decoded = adamant::tpch::queries::q6::decode(&out);
                assert_eq!(decoded, reference, "{context}: diverged from reference");
                let mut stats = stats;
                stats.wall_ns = 0;
                stats_json.push_str(&stats.to_json());
                stats_json.push('\n');
                outcomes.push(Ok(decoded));
            }
            Err(err) => {
                assert!(
                    matches!(
                        err,
                        ExecError::Device(_)
                            | ExecError::KernelFailed { .. }
                            | ExecError::DeadlineExceeded { .. }
                            | ExecError::TransferCorrupted { .. }
                    ),
                    "{context}: unexpected error class: {err}"
                );
                outcomes.push(Err(err.to_string()));
            }
        }
        assert_no_leaks(&mut engine, &context);
    }
    (outcomes, stats_json)
}

/// Seeded checkpoint × death × chaos soak across every chunked model:
/// survivable, typed, leak-free, and — same seed, fresh engine —
/// byte-identically deterministic (stats JSON with wall time zeroed).
#[test]
fn seeded_recovery_soak_is_survivable_and_deterministic() {
    for seed in seeds() {
        let catalog = TpchGenerator::new(0.001, seed).generate();
        let reference = adamant::tpch::reference::q6(&catalog).unwrap();
        let plans: Vec<(&str, FaultPlan)> = vec![
            ("exec-death", FaultPlan::none().die_on_exec(5)),
            (
                "seeded-death",
                FaultPlan::none().with_seed(seed).death_rate(0.05),
            ),
            (
                "death+chaos",
                FaultPlan::none()
                    .with_seed(seed)
                    .death_rate(0.03)
                    .slowdown(3.0)
                    .oom_on_allocation(2)
                    .corrupt_checkpoint(2),
            ),
        ];
        for model in CHUNKED_MODELS {
            for (name, plan) in &plans {
                let first = recovery_sweep(seed, name, plan.clone(), model, &catalog, reference);
                let second = recovery_sweep(seed, name, plan.clone(), model, &catalog, reference);
                assert_eq!(
                    first, second,
                    "seed {seed} {name} {model:?}: same-seed sweeps diverged"
                );
            }
        }
    }
}

/// Checkpoints off (the default) must be byte-for-byte inert: a run with
/// the default config reports all-zero checkpoint counters.
#[test]
fn checkpoints_are_off_by_default_and_inert() {
    let catalog = TpchGenerator::new(0.001, 1).generate();
    let mut engine = two_device_engine(FaultPlan::none(), None);
    let dev0 = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev0, &catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
    let (_, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(stats.checkpoints_taken, 0);
    assert_eq!(stats.checkpoint_bytes, 0);
    assert_eq!(stats.resumes, 0);
    assert_eq!(stats.chunks_skipped_on_resume, 0);
    assert_eq!(stats.resume_validation_failures, 0);
}

/// Session-level bounded retry (opt-in): a capacity-loss shed is
/// re-submitted exactly once against the reconciled membership and
/// terminates with a typed outcome; without the policy the shed surfaces
/// directly. Cancellations and deadline sheds are never retried.
#[test]
fn session_retry_resubmits_capacity_loss_once() {
    let mut catalog = Catalog::new();
    catalog.register(
        Table::new(
            "sales",
            vec![
                Column::from_i64("qty", (0..4000).map(|i| i % 97).collect()),
                Column::from_i64("price", (0..4000).map(|i| (i % 13) * 100).collect()),
            ],
        )
        .unwrap(),
    );
    // Big doomed primary; the survivor's pool sits between the query's
    // *actual* chunk-bounded working set (so execution itself recovers and
    // completes there) and its conservative admission footprint (so the
    // stranded reservation cannot be re-homed). The run is shed
    // `CapacityLost` after reconciliation; a resubmission is admitted
    // against the survivors alone, where the footprint exceeds every
    // device — it must end *typed* (`Rejected`), not loop forever and not
    // surface the shed.
    let build = || {
        Adamant::builder()
            .chunk_rows(256)
            .device(DeviceProfile::cuda_rtx2080ti())
            .device(DeviceProfile::opencl_cpu_i7().with_memory(16 << 10, 4 << 10))
            .fault_plan(0, FaultPlan::none().die_on_exec(1))
            .build()
            .unwrap()
    };

    // Without the opt-in policy the shed surfaces to the caller.
    let mut engine = build();
    let err = Session::new(&mut engine, &catalog)
        .sql("SELECT SUM(price) FROM sales WHERE qty < 50")
        .unwrap_err();
    assert!(
        matches!(err, SessionError::Shed(ShedReason::CapacityLost)),
        "expected a CapacityLost shed, got: {err}"
    );

    // With it, the query is re-submitted once after reconciliation; the
    // survivors cannot hold it, so the retry terminates with the typed
    // admission rejection instead of the shed.
    let mut engine = build();
    let err = Session::new(&mut engine, &catalog)
        .retry(SessionRetryPolicy::default())
        .sql("SELECT SUM(price) FROM sales WHERE qty < 50")
        .unwrap_err();
    assert!(
        matches!(err, SessionError::Rejected(_)),
        "retried shed must end in a typed admission outcome, got: {err}"
    );

    // A deadline shed is never retried, with or without the policy.
    let mut engine = Adamant::builder()
        .chunk_rows(256)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap();
    let err = Session::new(&mut engine, &catalog)
        .retry(SessionRetryPolicy::default())
        .deadline_ns(1e-9)
        .sql("SELECT SUM(price) FROM sales WHERE qty < 50")
        .unwrap_err();
    match err {
        SessionError::Shed(ShedReason::DeadlineExpired)
        | SessionError::Shed(ShedReason::BudgetExceeded)
        | SessionError::Exec(_) => {}
        other => panic!("deadline outcome must not be retried, got: {other}"),
    }
}
