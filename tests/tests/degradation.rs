//! Graceful degradation end-to-end: the cross-query device health registry
//! (circuit breakers, quarantine, half-open probes), recovery-aware fallback
//! placement, query deadlines and cooperative cancellation.

use adamant::prelude::*;

fn filter_map_sum(dev: DeviceId, threshold: i64, factor: i64) -> PrimitiveGraph {
    let mut pb = PlanBuilder::new(dev);
    let mut s = pb.scan("t", &["x"]);
    s.filter(&mut pb, Predicate::cmp("x", CmpOp::Ge, threshold))
        .unwrap();
    s.project(&mut pb, "y", Expr::col("x").mul(Expr::lit(factor)))
        .unwrap();
    let y = s.materialized(&mut pb, "y").unwrap();
    let sum = pb.agg_block(y, AggFunc::Sum, "sum");
    pb.output("sum", sum);
    pb.build().unwrap()
}

fn test_data(n: i64) -> Vec<i64> {
    (0..n).map(|i| (i * 37 + 11) % 500 - 250).collect()
}

fn expected_sum(data: &[i64], threshold: i64, factor: i64) -> i64 {
    data.iter()
        .filter(|&&v| v >= threshold)
        .map(|v| v * factor)
        .sum()
}

/// The acceptance scenario of the per-kernel circuit breakers, on one
/// engine across four queries:
///
/// 1. query 1 trips the `(dev0, agg_block)` breaker of a persistently
///    broken kernel and falls back to the healthy device — while dev0
///    itself stays out of quarantine (one broken kernel must not condemn a
///    healthy device);
/// 2. query 2 is placed around the quarantined kernel up front — zero
///    retries, the broken kernel never touched, the skip recorded;
/// 3. the kernel is "repaired"; after the cool-down, query 3 is admitted
///    as a half-open kernel probe, succeeds, and restores the breaker to
///    `Closed` with the failure memory cleared;
/// 4. query 4 runs on the restored device without any health intervention.
#[test]
fn kernel_breaker_quarantine_probe_lifecycle() {
    let data = test_data(150);
    let expected = expected_sum(&data, -100, 2);
    let mut engine = Adamant::builder()
        .chunk_rows(50)
        // Fault scripting targets the unfused kernel names / allocation
        // ordinals, so run this scenario with fusion off.
        .fusion(false)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .fault_plan(0, FaultPlan::none().broken_kernel("agg_block"))
        .health_policy(HealthPolicy {
            cooldown_queries: 1,
            kernel_cooldown_queries: 1,
            ..HealthPolicy::default()
        })
        .build()
        .unwrap();
    let dev0 = engine.device_ids()[0];
    let graph = filter_map_sum(dev0, -100, 2);
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());

    // Query 1: two strikes on `agg_block` trip its kernel breaker; the
    // fallback placement completes the query elsewhere. The device breaker
    // must NOT trip: the failure streak never spanned a second kernel.
    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(out.i64_column("sum")[0], expected);
    assert!(stats.retries >= 2, "fallback needs two failed attempts");
    assert!(
        stats.kernel_breaker_trips >= 1,
        "kernel breaker did not trip"
    );
    assert_eq!(
        stats.breaker_trips, 0,
        "device breaker tripped for one kernel"
    );
    assert!(
        !engine.health().is_quarantined(dev0),
        "one broken kernel must not quarantine the whole device"
    );
    assert!(
        engine.health().kernel_known_broken(dev0, "agg_block"),
        "kernel not quarantined"
    );
    // The open kernel count is visible in the exported stats.
    assert!(
        stats.to_json().contains("\"open_kernels\":1"),
        "kernel quarantine missing from stats JSON: {}",
        stats.to_json()
    );
    let hits_after_q1 = engine
        .executor()
        .devices()
        .get(dev0)
        .unwrap()
        .fault_counters()
        .broken_kernel_hits;

    // Query 2: the known-broken kernel re-places the plan up front — no
    // retries, and the broken kernel is never executed again.
    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(out.i64_column("sum")[0], expected);
    assert_eq!(stats.retries, 0, "quarantined kernel was still attempted");
    assert!(stats.quarantine_skips > 0, "no skip recorded");
    assert_eq!(
        engine
            .executor()
            .devices()
            .get(dev0)
            .unwrap()
            .fault_counters()
            .broken_kernel_hits,
        hits_after_q1,
        "quarantined kernel was still executed"
    );
    // Query 2 completing ends the one-query cool-down: the kernel breaker
    // half-opens (the device breaker never moved).
    assert!(!engine.health().kernel_known_broken(dev0, "agg_block"));
    assert!(
        matches!(
            engine.health().kernel_state(dev0, "agg_block"),
            Some(BreakerState::HalfOpen)
        ),
        "kernel cool-down did not elapse"
    );

    // Repair the kernel, then query 3 probes and restores it.
    engine.set_fault_plan(0, FaultPlan::none()).unwrap();
    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(out.i64_column("sum")[0], expected);
    assert!(
        stats.kernel_probe_successes >= 1,
        "kernel probe success not recorded"
    );
    assert!(
        !matches!(
            engine.health().kernel_state(dev0, "agg_block"),
            Some(BreakerState::Open { .. } | BreakerState::HalfOpen)
        ),
        "kernel breaker not re-closed"
    );
    assert_eq!(
        engine.health().retry_penalty_ns(dev0),
        0.0,
        "probe success should clear failure memory"
    );

    // Query 4: business as usual on the repaired device.
    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(out.i64_column("sum")[0], expected);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.quarantine_skips, 0);
    for &d in engine.device_ids() {
        let used = engine.executor().devices().get(d).unwrap().pool().used();
        assert_eq!(used, 0, "leaked {used} bytes on {d}");
    }
}

/// Fallback placement consults the health registry: a candidate whose
/// resolved kernel is already known broken there is skipped outright, even
/// though its breaker is still closed.
#[test]
fn repoint_skips_known_broken_kernel_candidates() {
    let data = test_data(120);
    let mut engine = Adamant::builder()
        .chunk_rows(40)
        // Fault scripting targets the unfused kernel names / allocation
        // ordinals, so run this scenario with fusion off.
        .fusion(false)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .device(DeviceProfile::openmp_cpu_i7())
        .fault_plan(0, FaultPlan::none().broken_kernel("agg_block"))
        .fault_plan(1, FaultPlan::none().broken_kernel("agg_block"))
        // Breakers stay closed throughout: this isolates the known-broken
        // kernel skip from quarantine.
        .health_policy(HealthPolicy {
            failure_threshold: 100,
            ..HealthPolicy::default()
        })
        .build()
        .unwrap();
    let (dev0, dev1) = (engine.device_ids()[0], engine.device_ids()[1]);
    // Teach the registry that `agg_block` is broken on dev1 (as a previous
    // query would have): the fallback from dev0 must skip straight to dev2.
    let health = engine.executor_mut().health_mut();
    health.record_kernel_failure(dev1, "agg_block", 100.0);
    health.record_kernel_failure(dev1, "agg_block", 100.0);
    assert!(health.kernel_known_broken(dev1, "agg_block"));

    let graph = filter_map_sum(dev0, 0, 3);
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());
    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(out.i64_column("sum")[0], expected_sum(&data, 0, 3));
    // One fallback, directly to the healthy third device; trying dev1 first
    // would have cost a second fallback and two more retries.
    assert_eq!(stats.fallback_placements, 1, "expected a single fallback");
    assert_eq!(stats.retries, 2);
    assert_eq!(
        engine
            .executor()
            .devices()
            .get(dev1)
            .unwrap()
            .fault_counters()
            .broken_kernel_hits,
        0,
        "known-broken candidate was still executed on"
    );
}

/// A wedged device (every kernel execution fails) under a simulated-timeline
/// deadline: the run unwinds cleanly with `DeadlineExceeded` instead of
/// burning the full retry budget, releases every buffer, and the aborted
/// run's stats stay observable and byte-stable.
#[test]
fn deadline_bounds_wedged_device() {
    let run_once = || -> (String, u64) {
        let mut engine = Adamant::builder()
            .chunk_rows(32)
            .device(DeviceProfile::cuda_rtx2080ti())
            .fault_plan(0, FaultPlan::none().transient_exec_errors(u64::MAX))
            .retry_policy(RetryPolicy {
                max_attempts: 10_000,
                ..Default::default()
            })
            // Small enough that the second attempt's pre-check trips it,
            // large enough that the first attempt is admitted.
            .deadline_ns(1_000.0)
            .build()
            .unwrap();
        let dev = engine.device_ids()[0];
        let graph = filter_map_sum(dev, 0, 2);
        let mut inputs = QueryInputs::new();
        inputs.bind("x", test_data(200));
        let err = engine
            .run(&graph, &inputs, ExecutionModel::Chunked)
            .unwrap_err();
        match err {
            ExecError::DeadlineExceeded {
                budget_ns,
                spent_ns,
            } => {
                assert_eq!(budget_ns, 1_000.0);
                assert!(spent_ns > budget_ns);
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        let used = engine.executor().devices().get(dev).unwrap().pool().used();
        assert_eq!(used, 0, "leaked {used} bytes after deadline abort");
        let stats = engine
            .executor()
            .last_run_stats()
            .expect("aborted run must leave stats behind")
            .clone();
        assert_eq!(stats.deadline_aborts, 1);
        assert!(
            stats.to_json().contains("\"deadline_aborts\":1"),
            "abort not exported"
        );
        let mut stats = stats;
        stats.wall_ns = 0;
        let attempts = engine
            .executor()
            .devices()
            .get(dev)
            .unwrap()
            .fault_counters()
            .transient_exec_injected;
        (stats.to_json(), attempts)
    };
    let (first, attempts) = run_once();
    let (second, _) = run_once();
    assert_eq!(first, second, "aborted-run stats drifted between runs");
    assert!(
        attempts < 100,
        "deadline should cut the retry spiral short, saw {attempts} attempts"
    );
}

/// A pre-cancelled token aborts before any work happens; the engine stays
/// usable afterwards.
#[test]
fn cancellation_unwinds_cleanly() {
    let data = test_data(100);
    let mut engine = Adamant::builder()
        .chunk_rows(16)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    let graph = filter_map_sum(dev, 0, 2);
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());

    let token = CancelToken::new();
    token.cancel();
    let err = engine
        .run_with_cancel(&graph, &inputs, ExecutionModel::Pipelined, &token)
        .unwrap_err();
    assert!(matches!(err, ExecError::Cancelled), "got {err}");
    let used = engine.executor().devices().get(dev).unwrap().pool().used();
    assert_eq!(used, 0, "leaked {used} bytes after cancellation");

    // A fresh (un-cancelled) token runs normally on the same engine.
    let (out, _) = engine
        .run_with_cancel(
            &graph,
            &inputs,
            ExecutionModel::Pipelined,
            &CancelToken::new(),
        )
        .unwrap();
    assert_eq!(out.i64_column("sum")[0], expected_sum(&data, 0, 2));
}

/// After an OOM chunk backoff, sustained success doubles the chunk size
/// back toward the configured value — in both the serial and the
/// overlapped streaming loops — and the regrowth is counted.
#[test]
fn chunk_size_regrows_after_backoff() {
    let data = test_data(400);
    let expected = expected_sum(&data, 0, 3);
    for model in [ExecutionModel::Chunked, ExecutionModel::Pipelined] {
        let mut engine = Adamant::builder()
            .chunk_rows(64)
            // Fault scripting targets the unfused kernel names / allocation
            // ordinals, so run this scenario with fusion off.
            .fusion(false)
            .device(DeviceProfile::cuda_rtx2080ti())
            .fault_plan(0, FaultPlan::none().oom_on_allocation(3))
            .retry_policy(RetryPolicy {
                regrow_after_chunks: 2,
                ..Default::default()
            })
            .build()
            .unwrap();
        let dev = engine.device_ids()[0];
        let graph = filter_map_sum(dev, 0, 3);
        let mut inputs = QueryInputs::new();
        inputs.bind("x", data.clone());
        let (out, stats) = engine.run(&graph, &inputs, model).unwrap();
        assert_eq!(out.i64_column("sum")[0], expected, "{model:?}");
        assert!(stats.chunk_backoffs > 0, "{model:?}: no backoff recorded");
        assert!(
            stats.chunk_regrowths > 0,
            "{model:?}: backed-off chunk size never regrew"
        );
        let used = engine.executor().devices().get(dev).unwrap().pool().used();
        assert_eq!(used, 0, "{model:?}: leaked {used} bytes");
    }
}

/// Disabling the health policy turns the whole subsystem off: the same
/// broken-device scenario records no breaker activity and query 2 blindly
/// retries the broken device again.
#[test]
fn disabled_health_policy_is_inert() {
    let data = test_data(100);
    let mut engine = Adamant::builder()
        .chunk_rows(32)
        // Fault scripting targets the unfused kernel names / allocation
        // ordinals, so run this scenario with fusion off.
        .fusion(false)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .fault_plan(0, FaultPlan::none().broken_kernel("agg_block"))
        .health_policy(HealthPolicy {
            enabled: false,
            ..HealthPolicy::default()
        })
        .build()
        .unwrap();
    let dev0 = engine.device_ids()[0];
    let graph = filter_map_sum(dev0, 0, 2);
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());
    for query in 0..2 {
        let (out, stats) = engine
            .run(&graph, &inputs, ExecutionModel::Chunked)
            .unwrap();
        assert_eq!(out.i64_column("sum")[0], expected_sum(&data, 0, 2));
        assert_eq!(stats.breaker_trips, 0, "query {query}");
        assert_eq!(stats.quarantine_skips, 0, "query {query}");
        assert!(
            stats.retries >= 2,
            "query {query}: with health off every query must rediscover the fault"
        );
        assert!(stats.device_health.is_empty(), "query {query}");
    }
}
