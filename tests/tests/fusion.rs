//! Fusion end-to-end: fused execution must be **reference-exact** against
//! unfused execution for every TPC-H query, under every execution model,
//! for both plan sources (hand-built plans and SQL-lowered plans) — while
//! actually fusing (chains recorded, interior intermediates elided, modeled
//! launch overhead saved).
//!
//! Also here: the straggler-watchdog regression (a fused chain on a healthy
//! device must not trip the watchdog — its budget must come from the fused
//! cost entry, not a per-stage sum), the residency interaction (elided
//! intermediates are never pinned), and a seeded fusion × faults soak
//! (same-seed runs byte-identical, zero leaked bytes), CI-shardable through
//! the `FUSION_SEED` environment variable.

use adamant::prelude::*;

const DEFAULT_SEEDS: [u64; 3] = [3, 11, 58];

fn seeds() -> Vec<u64> {
    match std::env::var("FUSION_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("FUSION_SEED must be an unsigned integer")],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

fn engine(fusion: bool) -> Adamant {
    Adamant::builder()
        .chunk_rows(1000)
        .fusion(fusion)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap()
}

/// Canonical, deterministic form of a query output (`QueryOutput` keeps its
/// columns in a `BTreeMap`, so the debug form is stable).
fn canon(out: &QueryOutput) -> String {
    format!("{out:?}")
}

fn assert_no_leaks(engine: &mut Adamant, context: &str) {
    engine.executor_mut().clear_residency();
    for d in engine.executor().devices().ids() {
        let dev = engine.executor().devices().get(d).unwrap();
        assert_eq!(dev.pool().used(), 0, "{context}: leaked bytes on {d}");
        assert_eq!(
            dev.pool().pinned_used(),
            0,
            "{context}: leaked pinned bytes on {d}"
        );
    }
}

/// SQL-lowered plans bind their scan columns straight from the catalog
/// (the same binding the session serving layer performs).
fn bind_compiled(compiled: &adamant::sql::CompiledQuery, catalog: &Catalog) -> QueryInputs {
    let mut inputs = QueryInputs::new();
    for (table, col) in &compiled.input_columns {
        let t = catalog.table(table).unwrap();
        inputs
            .bind_column(col.as_str(), t.column(col).unwrap())
            .unwrap();
    }
    inputs
}

/// The acceptance matrix: 7 queries × 5 models × both plan sources, fused
/// vs unfused reference-exact, with the fusion counters moving in the right
/// directions.
#[test]
fn fused_matches_unfused_for_every_query_model_and_plan_source() {
    let catalog = TpchGenerator::new(0.002, 0xF05E).generate();
    let mut fused = engine(true);
    let mut unfused = engine(false);
    let dev = fused.device_ids()[0];

    for q in TpchQuery::ALL {
        let hand_graph = q.plan(dev, &catalog).unwrap();
        let hand_inputs = q.bind(&catalog).unwrap();
        let compiled = adamant::sql::compile(adamant::tpch::sql::text(q), &catalog, dev)
            .unwrap_or_else(|e| panic!("{q}: SQL lowering failed: {e}"));
        let sql_inputs = bind_compiled(&compiled, &catalog);
        let sources: [(&str, &PrimitiveGraph, &QueryInputs); 2] = [
            ("hand-built", &hand_graph, &hand_inputs),
            ("sql-lowered", &compiled.graph, &sql_inputs),
        ];
        for model in ExecutionModel::ALL {
            for (source, graph, inputs) in sources {
                let ctx = format!("{q}/{model}/{source}");
                let (out_f, st_f) = fused
                    .run(graph, inputs, model)
                    .unwrap_or_else(|e| panic!("{ctx} fused: {e}"));
                let (out_u, st_u) = unfused
                    .run(graph, inputs, model)
                    .unwrap_or_else(|e| panic!("{ctx} unfused: {e}"));
                assert_eq!(
                    canon(&out_f),
                    canon(&out_u),
                    "{ctx}: fused result diverged from unfused"
                );
                // The pass must actually engage on every query's plan…
                assert!(st_f.fused_chains >= 1, "{ctx}: nothing fused");
                assert!(
                    st_f.nodes_fused >= 2 * st_f.fused_chains,
                    "{ctx}: a chain has fewer than 2 stages"
                );
                assert!(
                    st_f.intermediates_elided_bytes > 0,
                    "{ctx}: no intermediates elided"
                );
                assert!(
                    st_f.fusion_saved_transfer_ns > 0.0,
                    "{ctx}: no modeled saving recorded"
                );
                // …materialize strictly fewer intermediate bytes…
                assert!(
                    st_f.intermediate_bytes < st_u.intermediate_bytes,
                    "{ctx}: fused {} !< unfused {} intermediate bytes",
                    st_f.intermediate_bytes,
                    st_u.intermediate_bytes
                );
                // …and never run slower on the modeled timeline.
                assert!(
                    st_f.total_ns <= st_u.total_ns,
                    "{ctx}: fused {} slower than unfused {}",
                    st_f.total_ns,
                    st_u.total_ns
                );
                // The disengaged pass reports nothing.
                assert_eq!(st_u.fused_chains, 0, "{ctx}");
                assert_eq!(st_u.nodes_fused, 0, "{ctx}");
                assert_eq!(st_u.intermediates_elided_bytes, 0, "{ctx}");
                assert_eq!(st_u.fusion_saved_transfer_ns, 0.0, "{ctx}");
            }
        }
    }
    assert_no_leaks(&mut fused, "fused engine");
    assert_no_leaks(&mut unfused, "unfused engine");
}

/// Watchdog regression: the straggler budget of a chunk containing a fused
/// chain must come from the **fused** cost entry. If the watchdog budgeted
/// the fused kernel at its per-stage sum — or worse, budgeted per-stage
/// while the device charged fused — a healthy device would look like a
/// straggler (or get hidden slack). On a healthy two-device engine with a
/// tight multiplier, nothing may fire and nothing may hedge.
#[test]
fn fused_chain_does_not_trip_watchdog_on_healthy_device() {
    let catalog = TpchGenerator::new(0.002, 0xF05E).generate();
    let mut engine = Adamant::builder()
        .chunk_rows(500)
        .watchdog_multiplier(1.05)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    for q in [TpchQuery::Q1, TpchQuery::Q6, TpchQuery::Q14] {
        let graph = q.plan(dev, &catalog).unwrap();
        let inputs = q.bind(&catalog).unwrap();
        for model in [ExecutionModel::Chunked, ExecutionModel::Pipelined] {
            let (_, stats) = engine.run(&graph, &inputs, model).unwrap();
            assert!(stats.fused_chains >= 1, "{q}/{model}: nothing fused");
            assert_eq!(
                stats.watchdog_fires, 0,
                "{q}/{model}: healthy fused chunk budgeted as a straggler"
            );
            assert_eq!(
                stats.hedged_launches, 0,
                "{q}/{model}: healthy fused chunk was hedged"
            );
        }
    }
}

/// Residency interaction: the cross-query cache pins *input* columns; the
/// buffers a fused chain elides must never be pinned or fingerprinted. The
/// pinned footprint with fusion on must equal the footprint with fusion off
/// (same inputs, same pins), results stay exact, and eviction pressure
/// under fusion leaks nothing.
#[test]
fn elided_intermediates_are_never_pinned_by_the_residency_cache() {
    let catalog = TpchGenerator::new(0.001, 0xF05E).generate();
    let reference = adamant::tpch::reference::q6(&catalog).unwrap();
    let run_pair = |fusion: bool| -> (u64, usize) {
        let mut engine = Adamant::builder()
            .chunk_rows(500)
            .fusion(fusion)
            .residency_cache(ResidencyConfig::new(1 << 30))
            .device(DeviceProfile::cuda_rtx2080ti())
            .build()
            .unwrap();
        let dev = engine.device_ids()[0];
        let graph = TpchQuery::Q6.plan(dev, &catalog).unwrap();
        let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
        let mut pinned = 0;
        let mut hits = 0;
        for _ in 0..2 {
            let (out, stats) = engine
                .run(&graph, &inputs, ExecutionModel::Chunked)
                .unwrap();
            assert_eq!(adamant::tpch::queries::q6::decode(&out), reference);
            pinned = stats.cache_pinned_bytes;
            hits = stats.cache_hits;
        }
        assert_no_leaks(&mut engine, &format!("residency fusion={fusion}"));
        (pinned, hits)
    };
    let (pinned_fused, hits_fused) = run_pair(true);
    let (pinned_unfused, hits_unfused) = run_pair(false);
    assert!(pinned_fused > 0, "cache never pinned the scan columns");
    assert_eq!(
        pinned_fused, pinned_unfused,
        "fusion changed the pinned footprint: fused chains must pin only \
         real inputs, never elided intermediates"
    );
    assert_eq!(hits_fused, hits_unfused, "warm-run hit profile diverged");
}

/// Seeded fusion × faults soak: fused execution under probabilistic fault
/// plans must stay reference-exact on success, fail typed on defeat, leak
/// nothing either way — and same-seed runs must be byte-identical in their
/// exported stats (fusion counters included).
#[test]
fn seeded_fusion_fault_soak_is_exact_and_deterministic() {
    let sweep = |catalog: &Catalog, seed: u64, model: ExecutionModel| -> (Option<i64>, String) {
        let mut engine = Adamant::builder()
            .chunk_rows(500)
            .device(DeviceProfile::cuda_rtx2080ti())
            .device(DeviceProfile::opencl_cpu_i7())
            .fault_plan(
                0,
                FaultPlan::none()
                    .with_seed(seed)
                    .exec_error_rate(0.05)
                    .oom_rate(0.05),
            )
            .retry_policy(RetryPolicy {
                max_attempts: 6,
                ..Default::default()
            })
            .build()
            .unwrap();
        let dev = engine.device_ids()[0];
        let graph = TpchQuery::Q6.plan(dev, catalog).unwrap();
        let inputs = TpchQuery::Q6.bind(catalog).unwrap();
        let outcome = engine
            .run(&graph, &inputs, model)
            .map(|(out, stats)| {
                assert!(stats.fused_chains >= 1, "seed {seed} {model}: no fusion");
                adamant::tpch::queries::q6::decode(&out)
            })
            .ok();
        let json = engine
            .executor()
            .last_run_stats()
            .map(|s| {
                let mut s = s.clone();
                s.wall_ns = 0;
                s.to_json()
            })
            .unwrap_or_default();
        assert_no_leaks(&mut engine, &format!("seed {seed} {model}"));
        (outcome, json)
    };

    for seed in seeds() {
        let catalog = TpchGenerator::new(0.001, seed).generate();
        let reference = adamant::tpch::reference::q6(&catalog).unwrap();
        for model in ExecutionModel::ALL {
            let (first, json_a) = sweep(&catalog, seed, model);
            let (second, json_b) = sweep(&catalog, seed, model);
            if let Some(v) = first {
                assert_eq!(v, reference, "seed {seed} {model}: survived but diverged");
            }
            assert_eq!(
                first, second,
                "seed {seed} {model}: same-seed outcomes diverged"
            );
            assert_eq!(
                json_a, json_b,
                "seed {seed} {model}: same-seed stats drifted"
            );
        }
    }
}
