//! Scheduler-level preemption: a tight-deadline query suspends
//! lower-urgency running queries at chunk granularity, meets its deadline,
//! and the suspended queries resume without losing fairness accounting or
//! result exactness. Also the regression suite for the fair-share
//! weight-update and completed-past-deadline bugs, and the ledger's
//! O(outstanding) release.
//!
//! The CI `preempt` job shards the seeded soak through `PREEMPT_SEED`
//! (mirroring `SCHED_SEED`/`INTEGRITY_SEED`), randomizing arrival order ×
//! deadlines × preemption on/off and asserting no completed query silently
//! misses its deadline.

use adamant::prelude::*;
use adamant::sched::ReservationLedger;
use adamant::storage::Rng;

fn filter_map_sum(dev: DeviceId, threshold: i64, factor: i64) -> PrimitiveGraph {
    let mut pb = PlanBuilder::new(dev);
    let mut s = pb.scan("t", &["x"]);
    s.filter(&mut pb, Predicate::cmp("x", CmpOp::Ge, threshold))
        .unwrap();
    s.project(&mut pb, "y", Expr::col("x").mul(Expr::lit(factor)))
        .unwrap();
    let y = s.materialized(&mut pb, "y").unwrap();
    let sum = pb.agg_block(y, AggFunc::Sum, "sum");
    pb.output("sum", sum);
    pb.build().unwrap()
}

fn test_data(n: i64) -> Vec<i64> {
    (0..n).map(|i| (i * 37 + 11) % 500 - 250).collect()
}

fn expected_sum(data: &[i64], threshold: i64, factor: i64) -> i64 {
    data.iter()
        .filter(|&&v| v >= threshold)
        .map(|v| v * factor)
        .sum()
}

fn engine() -> Adamant {
    Adamant::builder()
        .chunk_rows(100)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap()
}

/// The rt query's solo modeled runtime on a fresh engine — the baseline
/// both deadline choices below are derived from.
fn solo_ns(data: &[i64], threshold: i64, factor: i64) -> f64 {
    let mut e = engine();
    let dev = e.device_ids()[0];
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.to_vec());
    let (_, stats) = e
        .run(
            &filter_map_sum(dev, threshold, factor),
            &inputs,
            ExecutionModel::Chunked,
        )
        .unwrap();
    // The scheduler serves exactly the recorded per-chunk slices, so the
    // slice sum — not total_ns — is the query's service demand on the
    // shared timeline.
    if stats.slice_ns.is_empty() {
        stats.total_ns
    } else {
        stats.slice_ns.iter().sum()
    }
}

/// One bulk-vs-realtime contention run. The bulk tenant's long query and
/// the rt tenant's small deadline query are both admitted at vt 0; under
/// pure WFQ the rt query finishes at ≈2× its work and misses, with
/// preemption it drains first and meets.
fn contention_run(
    data_bulk: &[i64],
    data_rt: &[i64],
    deadline_ns: f64,
    preempt: Option<f64>,
) -> (SchedReport, QueryTicket, QueryTicket) {
    let mut e = engine();
    if let Some(slack) = preempt {
        e.set_preempt_policy(PreemptPolicy::with_slack_ns(slack));
    }
    let dev = e.device_ids()[0];
    let mut bulk_inputs = QueryInputs::new();
    bulk_inputs.bind("x", data_bulk.to_vec());
    let mut rt_inputs = QueryInputs::new();
    rt_inputs.bind("x", data_rt.to_vec());

    let mut session = e.session();
    session.tenant("bulk", 1.0).tenant("rt", 1.0);
    let bulk = session.submit(
        "bulk",
        QuerySpec::new(
            filter_map_sum(dev, -100, 2),
            bulk_inputs,
            ExecutionModel::Chunked,
        ),
    );
    let rt = session.submit(
        "rt",
        QuerySpec::new(
            filter_map_sum(dev, 0, 3),
            rt_inputs,
            ExecutionModel::Chunked,
        )
        .with_deadline_ns(deadline_ns),
    );
    (session.run_all(), bulk, rt)
}

/// The acceptance A/B: the same tight-deadline query submitted behind a
/// long-running tenant misses its deadline under pure WFQ interleaving and
/// meets it with preemption enabled — both configurations reference-exact,
/// with `preemptions`/`deadline_misses` surfaced in the stats JSON.
#[test]
fn tight_deadline_met_only_with_preemption() {
    let data_bulk = test_data(6_000);
    let data_rt = test_data(1_000);
    let rt_solo = solo_ns(&data_rt, 0, 3);
    // Comfortably above the solo cost, comfortably below the ≈2× finish
    // that 1:1 interleaving with the (longer) bulk query forces.
    let deadline = 1.5 * rt_solo;

    // A: preemption disabled — admitted in time, finishes late, and the
    // miss is *reported*, not silent (the completed-past-deadline bugfix).
    let (report, bulk, rt) = contention_run(&data_bulk, &data_rt, deadline, None);
    assert_eq!(
        report
            .output(bulk)
            .expect("bulk completes")
            .i64_column("sum")[0],
        expected_sum(&data_bulk, -100, 2)
    );
    assert_eq!(
        report.output(rt).expect("rt completes").i64_column("sum")[0],
        expected_sum(&data_rt, 0, 3)
    );
    assert!(
        report.finish_ns(rt).unwrap() > deadline,
        "without preemption the rt query must finish late (finish {} vs deadline {})",
        report.finish_ns(rt).unwrap(),
        deadline
    );
    assert_eq!(
        report.missed_deadline(rt),
        Some(true),
        "late completion must carry missed_deadline"
    );
    assert_eq!(report.stats().deadline_misses, 1);
    assert_eq!(report.stats().preemptions, 0);
    assert_eq!(report.stats().tenants["rt"].deadline_misses, 1);
    let json = report.stats().to_json();
    assert!(
        json.contains("\"deadline_misses\":1") && json.contains("\"preemptions\":0"),
        "counters missing from JSON: {json}"
    );

    // B: preemption enabled — the bulk query is suspended, the rt slices
    // drain first, the deadline is met, and the bulk query still completes
    // reference-exact after resuming.
    let (report, bulk, rt) = contention_run(&data_bulk, &data_rt, deadline, Some(deadline));
    assert_eq!(
        report
            .output(bulk)
            .expect("bulk completes")
            .i64_column("sum")[0],
        expected_sum(&data_bulk, -100, 2)
    );
    assert_eq!(
        report.output(rt).expect("rt completes").i64_column("sum")[0],
        expected_sum(&data_rt, 0, 3)
    );
    assert!(
        report.finish_ns(rt).unwrap() <= deadline,
        "with preemption the rt query must meet its deadline (finish {} vs deadline {})",
        report.finish_ns(rt).unwrap(),
        deadline
    );
    assert_eq!(report.missed_deadline(rt), Some(false));
    let stats = report.stats();
    assert_eq!(stats.deadline_misses, 0);
    assert!(stats.preemptions >= 1, "the bulk query was never suspended");
    assert!(stats.resumed >= 1, "the bulk query was never resumed");
    assert!(stats.tenants["bulk"].preemptions >= 1);
    let json = stats.to_json();
    assert!(
        json.contains("\"preemptions\":") && json.contains("\"resumed\":"),
        "preemption counters missing from JSON: {json}"
    );
}

/// Suspension is bookkeeping-clean: every preemption is matched by a
/// resume by drain time, suspended time is not charged as `run_ns` (equal
/// workloads still cost equal totals), and all queries stay exact.
#[test]
fn suspended_queries_resume_and_accounting_balances() {
    let data_bulk = test_data(4_000);
    let data_rt = test_data(800);
    let rt_solo = solo_ns(&data_rt, 0, 3);
    let deadline = 1.5 * rt_solo;

    let mut e = engine();
    e.set_preempt_policy(PreemptPolicy::with_slack_ns(deadline));
    let dev = e.device_ids()[0];
    let mut bulk_inputs = QueryInputs::new();
    bulk_inputs.bind("x", data_bulk.clone());
    let mut rt_inputs = QueryInputs::new();
    rt_inputs.bind("x", data_rt.clone());

    let mut session = e.session();
    session
        .tenant("bulk-a", 1.0)
        .tenant("bulk-b", 1.0)
        .tenant("rt", 1.0);
    let mut bulks = Vec::new();
    for tenant in ["bulk-a", "bulk-b"] {
        bulks.push((
            tenant,
            session.submit(
                tenant,
                QuerySpec::new(
                    filter_map_sum(dev, -100, 2),
                    bulk_inputs.clone(),
                    ExecutionModel::Chunked,
                ),
            ),
        ));
    }
    let rt = session.submit(
        "rt",
        QuerySpec::new(
            filter_map_sum(dev, 0, 3),
            rt_inputs,
            ExecutionModel::Chunked,
        )
        .with_deadline_ns(deadline),
    );
    let report = session.run_all();

    for (tenant, t) in &bulks {
        let out = report
            .output(*t)
            .unwrap_or_else(|| panic!("{tenant} must complete: {:?}", report.outcome(*t)));
        assert_eq!(
            out.i64_column("sum")[0],
            expected_sum(&data_bulk, -100, 2),
            "{tenant} diverged after suspension"
        );
    }
    assert_eq!(report.missed_deadline(rt), Some(false));

    let stats = report.stats();
    // Both bulk tenants were parked while the rt slices drained.
    assert!(stats.preemptions >= 2);
    assert_eq!(
        stats.preemptions, stats.resumed,
        "every suspension must be matched by a resume once the run drains"
    );
    // Suspended time charges no run_ns: the two identical bulk workloads
    // still cost identical totals.
    let a = &stats.tenants["bulk-a"];
    let b = &stats.tenants["bulk-b"];
    let ratio = a.run_ns / b.run_ns;
    assert!(
        (0.99..=1.01).contains(&ratio),
        "equal bulk workloads must cost equal device time, got {ratio:.3}"
    );

    // Books balanced: nothing reserved, nothing leaked.
    drop(session);
    let pool = e.executor().devices().get(dev).unwrap().pool();
    assert_eq!(pool.admission_reserved(), 0);
    assert_eq!(pool.used(), 0);
}

/// With preemption enabled but no urgent queries in the mix, the fair-share
/// guarantee is untouched: 2:1 weights still yield ≈2× contended device
/// time and zero preemption events.
#[test]
fn fair_share_holds_with_preemption_enabled() {
    let data = test_data(3_000);
    let mut e = Adamant::builder()
        .chunk_rows(100)
        .device(DeviceProfile::cuda_rtx2080ti())
        .preempt_slack_ns(1e6)
        .build()
        .unwrap();
    let dev = e.device_ids()[0];
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());

    let mut session = e.session();
    assert!(session.preempt_policy().enabled);
    session.tenant("heavy", 2.0).tenant("light", 1.0);
    let mut tickets = Vec::new();
    for _ in 0..5 {
        for tenant in ["heavy", "light"] {
            tickets.push(session.submit(
                tenant,
                QuerySpec::new(
                    filter_map_sum(dev, -100, 2),
                    inputs.clone(),
                    ExecutionModel::Chunked,
                ),
            ));
        }
    }
    let report = session.run_all();
    for t in &tickets {
        let out = report.output(*t).expect("all queries complete");
        assert_eq!(out.i64_column("sum")[0], expected_sum(&data, -100, 2));
    }
    let stats = report.stats();
    assert_eq!(
        stats.preemptions, 0,
        "no deadlines, no starvation: preemption must stay dormant"
    );
    let ratio = stats.tenants["heavy"].contended_run_ns / stats.tenants["light"].contended_run_ns;
    assert!(
        (1.8..=2.2).contains(&ratio),
        "2:1 weights must survive an enabled-but-dormant preempter, got {ratio:.3}"
    );
}

/// Regression (fair-share weight-update bug): re-registering a tenant's
/// weight mid-session must reach the WFQ clock. On the seed tree
/// `ensure_stream` returned early with the old stream and the second batch
/// below still ran at the stale 1:1 ratio.
#[test]
fn reregistered_weight_updates_fair_share_mid_session() {
    let data = test_data(3_000);
    let mut e = engine();
    let dev = e.device_ids()[0];
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());

    let mut session = e.session();
    session.tenant("heavy", 1.0).tenant("light", 1.0);
    let submit_batch = |session: &mut QueryScheduler| {
        let mut tickets = Vec::new();
        for _ in 0..5 {
            for tenant in ["heavy", "light"] {
                tickets.push(session.submit(
                    tenant,
                    QuerySpec::new(
                        filter_map_sum(dev, -100, 2),
                        inputs.clone(),
                        ExecutionModel::Chunked,
                    ),
                ));
            }
        }
        tickets
    };

    // Batch 1 at 1:1.
    let batch1 = submit_batch(&mut session);
    let report1 = session.run_all();
    for t in &batch1 {
        assert!(report1.output(*t).is_some(), "batch-1 query must complete");
    }
    let first = report1.stats().clone();
    let ratio1 = first.tenants["heavy"].contended_run_ns / first.tenants["light"].contended_run_ns;
    assert!(
        (0.9..=1.1).contains(&ratio1),
        "1:1 batch must split evenly, got {ratio1:.3}"
    );

    // Re-register heavy at 3.0 — the documented contract says this updates
    // future scheduling decisions — then run an identical batch.
    session.tenant("heavy", 3.0);
    let batch2 = submit_batch(&mut session);
    let report2 = session.run_all();
    for t in &batch2 {
        assert!(report2.output(*t).is_some(), "batch-2 query must complete");
    }
    let second = report2.stats();
    let d_heavy =
        second.tenants["heavy"].contended_run_ns - first.tenants["heavy"].contended_run_ns;
    let d_light =
        second.tenants["light"].contended_run_ns - first.tenants["light"].contended_run_ns;
    let ratio2 = d_heavy / d_light;
    assert!(
        (2.6..=3.4).contains(&ratio2),
        "re-registered 3:1 weight must reach the WFQ clock, got {ratio2:.3} \
         (stale-stream bug would leave this at ≈1.0)"
    );
}

/// Regression (ledger): a failed admission leaves no reservation behind,
/// and `release_all` releases exactly the outstanding set (O(outstanding),
/// not a walk over every ticket ever issued).
#[test]
fn failed_admission_holds_no_reservation_and_release_all_drains() {
    let data = test_data(300);
    let mut e = Adamant::builder()
        .chunk_rows(100)
        .device(DeviceProfile::cuda_rtx2080ti().with_memory(128 << 10, 32 << 10))
        .build()
        .unwrap();
    let dev = e.device_ids()[0];

    // Ledger-level: a reservation that does not fit fails cleanly and
    // leaves the ledger untracked.
    {
        let mut ledger = ReservationLedger::new();
        let exec = e.executor_mut();
        assert!(ledger.reserve(exec, dev, 1, 1 << 30).is_err());
        assert!(!ledger.holds(1), "failed reservation must not be tracked");
        assert_eq!(ledger.outstanding(), 0);
        assert!(ledger.reserve(exec, dev, 2, 16 << 10).is_ok());
        assert!(ledger.holds(2));
        assert_eq!(ledger.outstanding(), 1);
        ledger.release_outstanding(exec);
        assert_eq!(ledger.outstanding(), 0);
        assert_eq!(
            e.executor()
                .devices()
                .get(dev)
                .unwrap()
                .pool()
                .admission_reserved(),
            0
        );
    }

    // Scheduler-level: an over-capacity submission is rejected; its ticket
    // holds nothing afterwards, and release_all on a session with many
    // historical tickets only touches the (empty) outstanding set.
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());
    let mut session = e.session();
    for _ in 0..20 {
        session.submit(
            "t",
            QuerySpec::new(
                filter_map_sum(dev, 0, 2),
                inputs.clone(),
                ExecutionModel::Chunked,
            ),
        );
    }
    let whale = session.submit(
        "t",
        QuerySpec::new(
            filter_map_sum(dev, 0, 2),
            inputs.clone(),
            ExecutionModel::Chunked,
        )
        .with_footprint(1 << 30),
    );
    let report = session.run_all();
    assert!(matches!(
        report.outcome(whale),
        Some(QueryOutcome::Rejected { .. })
    ));
    assert_eq!(
        session.outstanding_reservations(),
        0,
        "failed admission left a reservation in the ledger"
    );
    session.release_all().unwrap();
    assert_eq!(session.outstanding_reservations(), 0);
    drop(session);
    let pool = e.executor().devices().get(dev).unwrap().pool();
    assert_eq!(pool.admission_reserved(), 0, "reservation leaked");
}

/// Identical configurations replay identically: byte-identical stats JSON
/// and identical outcome classes across two runs with preemption enabled.
#[test]
fn preemption_is_deterministic_across_identical_runs() {
    let data_bulk = test_data(4_000);
    let data_rt = test_data(800);
    let deadline = 1.5 * solo_ns(&data_rt, 0, 3);
    let run = || {
        let (report, bulk, rt) = contention_run(&data_bulk, &data_rt, deadline, Some(deadline));
        (
            report.stats().to_json(),
            report.finish_ns(bulk),
            report.finish_ns(rt),
            report.missed_deadline(rt),
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "preemption broke determinism");
}

// ---------------------------------------------------------------------------
// Seeded soak (PREEMPT_SEED CI shard)
// ---------------------------------------------------------------------------

const DEFAULT_SEEDS: [u64; 3] = [1, 7, 42];

fn seeds() -> Vec<u64> {
    match std::env::var("PREEMPT_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("PREEMPT_SEED must be an unsigned integer")],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

/// Query mix drawn per seed: tenant × workload class; deadlines and arrival
/// order are randomized from the seed.
const SOAK_MIX: [(&str, i64, i64, i64); 6] = [
    ("alpha", 2_000, -100, 2),
    ("beta", 500, 0, 3),
    ("alpha", 1_000, 50, 5),
    ("gamma", 1_500, -200, 1),
    ("beta", 800, 120, 7),
    ("gamma", 600, 10, 4),
];

/// One seeded soak run: shuffled arrival order, randomized deadlines,
/// preemption on or off. Returns per-query `(sum, finish, deadline,
/// missed_flag)` plus the stats JSON.
#[allow(clippy::type_complexity)]
fn soak_run(
    seed: u64,
    preempt_on: bool,
) -> (Vec<(i64, Option<f64>, Option<f64>, Option<bool>)>, String) {
    let mut rng = Rng::new(seed.wrapping_mul(2) + preempt_on as u64);
    let mut e = Adamant::builder()
        .chunk_rows(100)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap();
    if preempt_on {
        e.set_preempt_policy(PreemptPolicy::with_slack_ns(1e7));
    }
    let dev = e.device_ids()[0];

    // Seed-shuffled arrival order (Fisher–Yates on indices).
    let mut order: Vec<usize> = (0..SOAK_MIX.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i as u64) as usize;
        order.swap(i, j);
    }

    let mut session = e.session();
    session
        .tenant("alpha", 2.0)
        .tenant("beta", 1.0)
        .tenant("gamma", 1.0);
    let mut submitted = Vec::new();
    for &i in &order {
        let (tenant, rows, threshold, factor) = SOAK_MIX[i];
        let data = test_data(rows);
        let mut inputs = QueryInputs::new();
        inputs.bind("x", data.clone());
        // Half the queries carry a deadline drawn wide enough that some
        // meet and some miss, across seeds.
        let deadline = if rng.gen_bool(0.5) {
            Some(rng.gen_range(2_000_000u64..40_000_000u64) as f64)
        } else {
            None
        };
        let mut spec = QuerySpec::new(
            filter_map_sum(dev, threshold, factor),
            inputs,
            ExecutionModel::Chunked,
        );
        if let Some(d) = deadline {
            spec = spec.with_deadline_ns(d);
        }
        let ticket = session.submit(tenant, spec);
        submitted.push((i, deadline, ticket, expected_sum(&data, threshold, factor)));
    }
    let report = session.run_all();

    let mut results = Vec::new();
    let mut observed_misses = 0u64;
    for (_, deadline, ticket, expect) in &submitted {
        match report.outcome(*ticket) {
            Some(QueryOutcome::Completed {
                output,
                finish_ns,
                missed_deadline,
                ..
            }) => {
                assert_eq!(
                    output.i64_column("sum")[0],
                    *expect,
                    "seed {seed}: completed query diverged from reference"
                );
                // The deadline-exactness invariant: a completed query is
                // flagged as missed IFF it actually finished past its own
                // deadline — never a silent miss, never a false alarm.
                let really_missed = deadline.is_some_and(|d| *finish_ns > d);
                assert_eq!(
                    *missed_deadline, really_missed,
                    "seed {seed}: missed_deadline flag disagrees with finish \
                     {finish_ns} vs deadline {deadline:?}"
                );
                observed_misses += missed_deadline.then_some(1).unwrap_or(0);
                results.push((*expect, Some(*finish_ns), *deadline, Some(*missed_deadline)));
            }
            Some(QueryOutcome::Shed { .. }) => {
                assert!(
                    deadline.is_some(),
                    "seed {seed}: only deadline queries may shed"
                );
                results.push((*expect, None, *deadline, None));
            }
            Some(QueryOutcome::Failed { error }) => {
                // A query whose solo modeled time exceeds its remaining
                // budget aborts mid-run; that is a clean typed failure, not
                // a silent miss.
                assert!(
                    matches!(error, ExecError::DeadlineExceeded { .. }),
                    "seed {seed}: unexpected failure class: {error}"
                );
                assert!(deadline.is_some());
                results.push((*expect, None, *deadline, None));
            }
            other => panic!("seed {seed}: unexpected outcome {other:?}"),
        }
    }
    let stats = report.stats();
    assert_eq!(
        stats.deadline_misses, observed_misses,
        "seed {seed}: aggregate miss counter out of sync with outcomes"
    );
    assert_eq!(
        stats.preemptions, stats.resumed,
        "seed {seed}: unbalanced suspend/resume after drain"
    );
    if !preempt_on {
        assert_eq!(
            stats.preemptions, 0,
            "seed {seed}: preemption while disabled"
        );
    }
    let json = stats.to_json();
    drop(report);
    drop(session);

    for &d in e.device_ids() {
        let pool = e.executor().devices().get(d).unwrap().pool();
        assert_eq!(pool.used(), 0, "seed {seed}: leaked bytes on {d}");
        assert_eq!(
            pool.admission_reserved(),
            0,
            "seed {seed}: leaked reservation on {d}"
        );
    }
    (results, json)
}

#[test]
fn seeded_preempt_soak_no_silent_misses_and_deterministic() {
    for seed in seeds() {
        for preempt_on in [false, true] {
            let (first, first_json) = soak_run(seed, preempt_on);
            let (second, second_json) = soak_run(seed, preempt_on);
            assert_eq!(
                first, second,
                "seed {seed} preempt={preempt_on}: outcomes flipped"
            );
            assert_eq!(
                first_json, second_json,
                "seed {seed} preempt={preempt_on}: stats drifted between identical runs"
            );
        }
    }
}
