//! SQL ↔ hand-built equivalence: every TPC-H query the paper evaluates,
//! written as SQL text (`adamant::tpch::sql`), compiled through the full
//! front door (parse → bind → rewrite → lower) and served by a [`Session`]
//! — i.e. scheduled through `QueryScheduler` admission — must produce
//! exactly the rows the hand-built primitive graph produces, under every
//! execution model.

use adamant::prelude::*;
use adamant::storage::datatype::format_date;
use adamant::tpch;

fn as_int(v: &SqlValue) -> i64 {
    match v {
        SqlValue::Int(x) => *x,
        other => panic!("expected int, got {other:?}"),
    }
}

fn as_text(v: &SqlValue) -> &str {
    match v {
        SqlValue::Str(s) | SqlValue::Date(s) => s,
        other => panic!("expected text, got {other:?}"),
    }
}

#[test]
fn sql_matches_hand_built_plans_under_every_model() {
    let catalog = tpch::TpchGenerator::new(0.002, 20260707).generate();
    let mut engine = Adamant::builder()
        .chunk_rows(1000)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];

    for q in TpchQuery::ALL {
        for model in ExecutionModel::ALL {
            // Hand-built path, straight through the executor.
            let graph = q.plan(dev, &catalog).unwrap();
            let inputs = q.bind(&catalog).unwrap();
            let (hand, _) = engine
                .run(&graph, &inputs, model)
                .unwrap_or_else(|e| panic!("{q} hand-built under {model}: {e}"));

            // SQL path, through the session serving layer (compile +
            // footprint estimation + scheduler admission + decode).
            let rs = Session::new(&mut engine, &catalog)
                .model(model)
                .sql(tpch::sql::text(q))
                .unwrap_or_else(|e| panic!("{q} via SQL under {model}: {e}"));
            assert!(rs.footprint_bytes > 0, "{q}: footprint fed to admission");

            compare(q, &catalog, &hand, &rs, model);
        }
    }
}

fn compare(
    q: TpchQuery,
    catalog: &Catalog,
    hand: &QueryOutput,
    rs: &adamant::SqlResultSet,
    model: ExecutionModel,
) {
    let ctx = |m: &str| format!("{q} under {model}: {m}");
    match q {
        TpchQuery::Q1 => {
            let want = tpch::queries::q1::decode(catalog, hand).unwrap();
            // The SQL plan orders by dictionary code; the decode contract
            // orders by string. Re-sort the same way before comparing.
            let mut got: Vec<_> = rs
                .rows
                .iter()
                .map(|r| {
                    (
                        as_text(&r[0]).to_string(),
                        as_text(&r[1]).to_string(),
                        as_int(&r[2]),
                        as_int(&r[3]),
                        as_int(&r[4]),
                        as_int(&r[5]),
                        as_int(&r[6]),
                        as_int(&r[7]),
                    )
                })
                .collect();
            got.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
            let want: Vec<_> = want
                .into_iter()
                .map(|r| {
                    (
                        r.returnflag,
                        r.linestatus,
                        r.sum_qty,
                        r.sum_base_price,
                        r.sum_disc_price,
                        r.sum_charge,
                        r.sum_disc,
                        r.count,
                    )
                })
                .collect();
            assert_eq!(got, want, "{}", ctx("rows"));
        }
        TpchQuery::Q3 => {
            let want: Vec<_> = tpch::queries::q3::decode(hand)
                .into_iter()
                .map(|r| {
                    (
                        r.orderkey,
                        r.revenue,
                        format_date(r.orderdate as i32),
                        r.shippriority,
                    )
                })
                .collect();
            let got: Vec<_> = rs
                .rows
                .iter()
                .map(|r| {
                    (
                        as_int(&r[0]),
                        as_int(&r[1]),
                        as_text(&r[2]).to_string(),
                        as_int(&r[3]),
                    )
                })
                .collect();
            assert_eq!(got, want, "{}", ctx("top-10 rows"));
        }
        TpchQuery::Q4 => {
            let want: Vec<_> = tpch::queries::q4::decode(catalog, hand)
                .unwrap()
                .into_iter()
                .map(|r| (r.priority, r.count))
                .collect();
            let mut got: Vec<_> = rs
                .rows
                .iter()
                .map(|r| (as_text(&r[0]).to_string(), as_int(&r[1])))
                .collect();
            got.sort();
            assert_eq!(got, want, "{}", ctx("rows"));
        }
        TpchQuery::Q6 => {
            let want = tpch::queries::q6::decode(hand);
            assert_eq!(rs.rows.len(), 1, "{}", ctx("one row"));
            assert_eq!(as_int(&rs.rows[0][0]), want, "{}", ctx("revenue"));
        }
        TpchQuery::Q10 => {
            let want: Vec<_> = tpch::queries::q10::decode(hand)
                .into_iter()
                .map(|r| (r.custkey, r.revenue))
                .collect();
            let got: Vec<_> = rs
                .rows
                .iter()
                .map(|r| (as_int(&r[0]), as_int(&r[1])))
                .collect();
            assert_eq!(got, want, "{}", ctx("top-20 rows"));
        }
        TpchQuery::Q12 => {
            let want: Vec<_> = tpch::queries::q12::decode(catalog, hand)
                .unwrap()
                .into_iter()
                .map(|r| (r.shipmode, r.high_line_count, r.low_line_count))
                .collect();
            let mut got: Vec<_> = rs
                .rows
                .iter()
                .map(|r| (as_text(&r[0]).to_string(), as_int(&r[1]), as_int(&r[2])))
                .collect();
            got.sort();
            assert_eq!(got, want, "{}", ctx("rows"));
        }
        TpchQuery::Q14 => {
            let (promo, total) = tpch::queries::q14::decode(hand);
            assert_eq!(rs.rows.len(), 1, "{}", ctx("one row"));
            assert_eq!(as_int(&rs.rows[0][0]), promo, "{}", ctx("promo_revenue"));
            assert_eq!(as_int(&rs.rows[0][1]), total, "{}", ctx("total_revenue"));
        }
    }
}

/// The compiled SQL plans read exactly the same `(table, column)` inputs as
/// the hand-built plans declare — projection pruning drops everything else,
/// so footprint estimation and admission see the same scan set.
#[test]
fn sql_input_columns_match_declared_footprints() {
    let catalog = tpch::TpchGenerator::new(0.002, 20260707).generate();
    for q in TpchQuery::ALL {
        let compiled = adamant::sql::compile(tpch::sql::text(q), &catalog, DeviceId(0)).unwrap();
        let mut got: Vec<(String, String)> = compiled.input_columns.clone();
        got.sort();
        got.dedup();
        let mut want: Vec<(String, String)> = q
            .input_columns()
            .iter()
            .map(|(t, c)| (t.to_string(), c.to_string()))
            .collect();
        want.sort();
        assert_eq!(got, want, "{q}: pruned scan set");
    }
}
