//! Chaos soak: TPC-H-style plans under seeded probabilistic fault plans,
//! across all execution models and several seeds. Every run must either
//! match the fault-free reference exactly or fail with a clean typed error
//! — never panic — and always return every device pool to zero bytes.
//! Same-seed runs must be byte-identical.
//!
//! The CI `chaos` job shards this suite by seed through the `CHAOS_SEED`
//! environment variable.

use adamant::prelude::*;

const DEFAULT_SEEDS: [u64; 3] = [1, 7, 42];

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

/// One engine under a seeded fault plan; returns the run's outcome and the
/// (wall-clock-free) stats JSON of the attempt.
fn chaos_run(
    catalog: &Catalog,
    seed: u64,
    model: ExecutionModel,
) -> (Result<i64, ExecError>, String) {
    let mut engine = Adamant::builder()
        .chunk_rows(500)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .fault_plan(
            0,
            FaultPlan::none()
                .with_seed(seed)
                .exec_error_rate(0.05)
                .oom_rate(0.05),
        )
        .retry_policy(RetryPolicy {
            max_attempts: 6,
            ..Default::default()
        })
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev, catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(catalog).unwrap();
    let outcome = engine
        .run(&graph, &inputs, model)
        .map(|(out, _)| adamant::tpch::queries::q6::decode(&out));

    // Whatever happened, nothing may leak.
    for &d in engine.device_ids() {
        let pool = engine.executor().devices().get(d).unwrap();
        assert_eq!(
            pool.pool().used(),
            0,
            "seed {seed} {model:?}: leaked {} bytes on {d}",
            pool.pool().used()
        );
        assert_eq!(
            pool.pool().pinned_used(),
            0,
            "seed {seed} {model:?}: leaked pinned bytes on {d}"
        );
    }
    let mut stats = engine
        .executor()
        .last_run_stats()
        .expect("every run leaves stats")
        .clone();
    stats.wall_ns = 0;
    (outcome, stats.to_json())
}

#[test]
fn seeded_chaos_across_models_is_survivable_and_deterministic() {
    let catalog = TpchGenerator::new(0.001, 5).generate();
    let reference = adamant::tpch::reference::q6(&catalog).unwrap();
    for seed in seeds() {
        for model in ExecutionModel::ALL {
            let (first, first_json) = chaos_run(&catalog, seed, model);
            match &first {
                Ok(result) => assert_eq!(
                    result, &reference,
                    "seed {seed} {model:?}: recovered run diverged from reference"
                ),
                Err(
                    ExecError::Device(_)
                    | ExecError::KernelFailed { .. }
                    | ExecError::DeadlineExceeded { .. },
                ) => {} // clean, typed failure is acceptable under chaos
                Err(other) => {
                    panic!("seed {seed} {model:?}: unexpected error class: {other}")
                }
            }
            // Same seed, fresh engine: identical outcome and identical stats.
            let (second, second_json) = chaos_run(&catalog, seed, model);
            assert_eq!(
                first.is_ok(),
                second.is_ok(),
                "seed {seed} {model:?}: outcome flipped between identical runs"
            );
            if let (Ok(a), Ok(b)) = (&first, &second) {
                assert_eq!(a, b, "seed {seed} {model:?}: results differ");
            }
            assert_eq!(
                first_json, second_json,
                "seed {seed} {model:?}: stats drifted between identical runs"
            );
        }
    }
}

/// Distinct seeds must actually produce distinct fault schedules somewhere
/// in the sweep — otherwise the matrix is testing one schedule n times.
#[test]
fn distinct_seeds_vary_the_schedule() {
    let catalog = TpchGenerator::new(0.001, 5).generate();
    let jsons: Vec<String> = DEFAULT_SEEDS
        .iter()
        .map(|&seed| chaos_run(&catalog, seed, ExecutionModel::Chunked).1)
        .collect();
    assert!(
        jsons.windows(2).any(|w| w[0] != w[1]),
        "all seeds produced identical runs — seeding is broken"
    );
}
