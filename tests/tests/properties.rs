//! Property-based tests (proptest) over the engine's core invariants:
//! random data and parameters, results validated against straightforward
//! host computations.

use adamant::prelude::*;
use proptest::prelude::*;

fn engine(chunk_rows: usize) -> (Adamant, DeviceId) {
    let engine = Adamant::builder()
        .chunk_rows(chunk_rows)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    (engine, dev)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FILTER_BITMAP ∘ MATERIALIZE == host filter, under every comparison,
    /// any chunking.
    #[test]
    fn filter_materialize_matches_host(
        data in prop::collection::vec(-1000i64..1000, 0..500),
        cmp_code in 0i64..7,
        value in -1000i64..1000,
        span in 0i64..500,
        chunk_rows in 1usize..97,
    ) {
        let cmp = CmpOp::from_code(cmp_code).unwrap();
        let hi = value + span;
        let (mut engine, dev) = engine(chunk_rows);
        let mut pb = PlanBuilder::new(dev);
        let mut s = pb.scan("t", &["x"]);
        s.filter(&mut pb, Predicate::Cmp { col: "x".into(), cmp, value, hi }).unwrap();
        let x = s.materialized(&mut pb, "x").unwrap();
        let cnt = pb.agg_block(x, AggFunc::Count, "count");
        let sum = {
            // Reuse the materialized ref for a second aggregate.
            pb.agg_block(x, AggFunc::Sum, "sum")
        };
        pb.output("count", cnt);
        pb.output("sum", sum);
        let graph = pb.build().unwrap();
        let mut inputs = QueryInputs::new();
        inputs.bind("x", data.clone());
        let (out, _) = engine.run(&graph, &inputs, ExecutionModel::Chunked).unwrap();

        let selected: Vec<i64> = data.iter().copied().filter(|&v| cmp.eval(v, value, hi)).collect();
        prop_assert_eq!(out.i64_column("count")[0], selected.len() as i64);
        prop_assert_eq!(out.i64_column("sum")[0], selected.iter().sum::<i64>());
    }

    /// Every execution model computes identical results on a
    /// filter+map+sum query.
    #[test]
    fn models_agree(
        data in prop::collection::vec(-500i64..500, 0..400),
        threshold in -500i64..500,
        factor in -10i64..10,
        chunk_rows in 1usize..67,
    ) {
        let build = |dev: DeviceId| {
            let mut pb = PlanBuilder::new(dev);
            let mut s = pb.scan("t", &["x"]);
            s.filter(&mut pb, Predicate::cmp("x", CmpOp::Ge, threshold)).unwrap();
            s.project(&mut pb, "y", Expr::col("x").mul(Expr::lit(factor))).unwrap();
            let y = s.materialized(&mut pb, "y").unwrap();
            let sum = pb.agg_block(y, AggFunc::Sum, "sum");
            pb.output("sum", sum);
            pb.build().unwrap()
        };
        let mut results = Vec::new();
        for model in ExecutionModel::ALL {
            let (mut e, dev) = engine(chunk_rows);
            let graph = build(dev);
            let mut inputs = QueryInputs::new();
            inputs.bind("x", data.clone());
            let (out, _) = e.run(&graph, &inputs, model).unwrap();
            results.push(out.i64_column("sum").to_vec());
        }
        for r in &results[1..] {
            prop_assert_eq!(r, &results[0]);
        }
        let expected: i64 = data.iter().filter(|&&v| v >= threshold).map(|v| v * factor).sum();
        prop_assert_eq!(results[0][0], expected);
    }

    /// Join results match a host nested-loop join (sum of matched
    /// payloads), including duplicate keys on the build side.
    #[test]
    fn join_matches_nested_loop(
        build_keys in prop::collection::vec(0i64..50, 0..120),
        probe_keys in prop::collection::vec(0i64..80, 0..200),
        chunk_rows in 1usize..53,
    ) {
        let payload: Vec<i64> = build_keys.iter().map(|k| k * 7 + 1).collect();
        let (mut e, dev) = engine(chunk_rows);
        let mut pb = PlanBuilder::new(dev);
        let mut b = pb.scan("b", &["bk", "bp"]);
        let ht = b.hash_build(&mut pb, "bk", &["bp"], 64).unwrap();
        let mut p = pb.scan("p", &["pk"]);
        p.hash_probe(&mut pb, "pk", ht, &["bp"]).unwrap();
        let bp = p.materialized(&mut pb, "bp").unwrap();
        let sum = pb.agg_block(bp, AggFunc::Sum, "sum");
        let cnt = pb.agg_block(bp, AggFunc::Count, "cnt");
        pb.output("sum", sum);
        pb.output("cnt", cnt);
        let graph = pb.build().unwrap();
        let mut inputs = QueryInputs::new();
        inputs.bind("bk", build_keys.clone());
        inputs.bind("bp", payload.clone());
        inputs.bind("pk", probe_keys.clone());
        let (out, _) = e.run(&graph, &inputs, ExecutionModel::Chunked).unwrap();

        let mut expect_sum = 0i64;
        let mut expect_cnt = 0i64;
        for &pk in &probe_keys {
            for (i, &bk) in build_keys.iter().enumerate() {
                if bk == pk {
                    expect_sum += payload[i];
                    expect_cnt += 1;
                }
            }
        }
        prop_assert_eq!(out.i64_column("sum")[0], expect_sum);
        prop_assert_eq!(out.i64_column("cnt")[0], expect_cnt);
    }

    /// Group-by aggregation matches a host hash map under chunking.
    #[test]
    fn group_by_matches_host(
        rows in prop::collection::vec((0i64..20, -100i64..100), 0..300),
        chunk_rows in 1usize..71,
    ) {
        let keys: Vec<i64> = rows.iter().map(|(k, _)| *k).collect();
        let vals: Vec<i64> = rows.iter().map(|(_, v)| *v).collect();
        let (mut e, dev) = engine(chunk_rows);
        let mut pb = PlanBuilder::new(dev);
        let mut s = pb.scan("t", &["k", "v"]);
        let ht = s.hash_agg(&mut pb, "k", &[], &[(AggFunc::Sum, "v"), (AggFunc::Count, "v")], 32).unwrap();
        let groups = pb.group_result(ht, 0, 2);
        let perm = pb.sort(&[(groups.keys, false)]);
        let gk = pb.take(groups.keys, perm);
        let gs = pb.take(groups.states[0], perm);
        let gc = pb.take(groups.states[1], perm);
        pb.output("k", gk);
        pb.output("sum", gs);
        pb.output("count", gc);
        let graph = pb.build().unwrap();
        let mut inputs = QueryInputs::new();
        inputs.bind("k", keys.clone());
        inputs.bind("v", vals.clone());
        let (out, _) = e.run(&graph, &inputs, ExecutionModel::FourPhasePipelined).unwrap();

        let mut expected: std::collections::BTreeMap<i64, (i64, i64)> = Default::default();
        for (k, v) in &rows {
            let e = expected.entry(*k).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        let exp_keys: Vec<i64> = expected.keys().copied().collect();
        let exp_sums: Vec<i64> = expected.values().map(|e| e.0).collect();
        let exp_counts: Vec<i64> = expected.values().map(|e| e.1).collect();
        prop_assert_eq!(out.i64_column("k"), &exp_keys[..]);
        prop_assert_eq!(out.i64_column("sum"), &exp_sums[..]);
        prop_assert_eq!(out.i64_column("count"), &exp_counts[..]);
    }

    /// SORT permutation + MATERIALIZE_POSITION equals host sorting.
    #[test]
    fn sort_matches_host(
        data in prop::collection::vec(-1000i64..1000, 0..200),
        desc in any::<bool>(),
    ) {
        let (mut e, dev) = engine(1024);
        let mut pb = PlanBuilder::new(dev);
        let mut s = pb.scan("t", &["x"]);
        let x = s.materialized(&mut pb, "x").unwrap();
        let perm = pb.sort(&[(x, desc)]);
        let sorted = pb.take(x, perm);
        pb.output("sorted", sorted);
        let graph = pb.build().unwrap();
        let mut inputs = QueryInputs::new();
        inputs.bind("x", data.clone());
        let (out, _) = e.run(&graph, &inputs, ExecutionModel::OperatorAtATime).unwrap();

        let mut expected = data.clone();
        expected.sort_unstable();
        if desc {
            expected.reverse();
        }
        prop_assert_eq!(out.i64_column("sorted"), &expected[..]);
    }

    /// Bitmap conjunction of two filters equals host AND, any chunking.
    #[test]
    fn bitmap_and_matches_host(
        data in prop::collection::vec(0i64..100, 0..400),
        a in 0i64..100,
        b in 0i64..100,
        chunk_rows in 1usize..61,
    ) {
        let (mut e, dev) = engine(chunk_rows);
        let mut pb = PlanBuilder::new(dev);
        let mut s = pb.scan("t", &["x"]);
        s.filter(&mut pb, Predicate::and(vec![
            Predicate::cmp("x", CmpOp::Ge, a),
            Predicate::cmp("x", CmpOp::Le, b),
        ])).unwrap();
        let x = s.materialized(&mut pb, "x").unwrap();
        let cnt = pb.agg_block(x, AggFunc::Count, "count");
        pb.output("count", cnt);
        let graph = pb.build().unwrap();
        let mut inputs = QueryInputs::new();
        inputs.bind("x", data.clone());
        let (out, _) = e.run(&graph, &inputs, ExecutionModel::Pipelined).unwrap();
        let expected = data.iter().filter(|&&v| v >= a && v <= b).count() as i64;
        prop_assert_eq!(out.i64_column("count")[0], expected);
    }
}
