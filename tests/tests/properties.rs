//! Randomized tests over the engine's core invariants: seeded data and
//! parameters, results validated against straightforward host computations.
//!
//! Driven by the workspace's deterministic [`Rng`] — a failing case names
//! its seed and reproduces exactly, without a stored regression corpus.

use adamant::prelude::*;
use adamant::storage::rng::Rng;

fn engine(chunk_rows: usize) -> (Adamant, DeviceId) {
    let engine = Adamant::builder()
        .chunk_rows(chunk_rows)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    (engine, dev)
}

/// FILTER_BITMAP ∘ MATERIALIZE == host filter, under every comparison,
/// any chunking.
#[test]
fn filter_materialize_matches_host() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0xF117_E500 + case);
        let n = rng.gen_range(0usize..500);
        let data: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let cmp = CmpOp::from_code(rng.gen_range(0i64..7)).unwrap();
        let value = rng.gen_range(-1000i64..1000);
        let hi = value + rng.gen_range(0i64..500);
        let chunk_rows = rng.gen_range(1usize..97);

        let (mut engine, dev) = engine(chunk_rows);
        let mut pb = PlanBuilder::new(dev);
        let mut s = pb.scan("t", &["x"]);
        s.filter(
            &mut pb,
            Predicate::Cmp {
                col: "x".into(),
                cmp,
                value,
                hi,
            },
        )
        .unwrap();
        let x = s.materialized(&mut pb, "x").unwrap();
        let cnt = pb.agg_block(x, AggFunc::Count, "count");
        // Reuse the materialized ref for a second aggregate.
        let sum = pb.agg_block(x, AggFunc::Sum, "sum");
        pb.output("count", cnt);
        pb.output("sum", sum);
        let graph = pb.build().unwrap();
        let mut inputs = QueryInputs::new();
        inputs.bind("x", data.clone());
        let (out, _) = engine
            .run(&graph, &inputs, ExecutionModel::Chunked)
            .unwrap();

        let selected: Vec<i64> = data
            .iter()
            .copied()
            .filter(|&v| cmp.eval(v, value, hi))
            .collect();
        assert_eq!(
            out.i64_column("count")[0],
            selected.len() as i64,
            "case {case}"
        );
        assert_eq!(
            out.i64_column("sum")[0],
            selected.iter().sum::<i64>(),
            "case {case}"
        );
    }
}

fn filter_map_sum_graph(dev: DeviceId, threshold: i64, factor: i64) -> PrimitiveGraph {
    let mut pb = PlanBuilder::new(dev);
    let mut s = pb.scan("t", &["x"]);
    s.filter(&mut pb, Predicate::cmp("x", CmpOp::Ge, threshold))
        .unwrap();
    s.project(&mut pb, "y", Expr::col("x").mul(Expr::lit(factor)))
        .unwrap();
    let y = s.materialized(&mut pb, "y").unwrap();
    let sum = pb.agg_block(y, AggFunc::Sum, "sum");
    pb.output("sum", sum);
    pb.build().unwrap()
}

fn run_models_agree_case(data: &[i64], threshold: i64, factor: i64, chunk_rows: usize) {
    let mut results = Vec::new();
    for model in ExecutionModel::ALL {
        let (mut e, dev) = engine(chunk_rows);
        let graph = filter_map_sum_graph(dev, threshold, factor);
        let mut inputs = QueryInputs::new();
        inputs.bind("x", data.to_vec());
        let (out, _) = e.run(&graph, &inputs, model).unwrap();
        results.push(out.i64_column("sum").to_vec());
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
    let expected: i64 = data
        .iter()
        .filter(|&&v| v >= threshold)
        .map(|v| v * factor)
        .sum();
    assert_eq!(results[0][0], expected);
}

/// Every execution model computes identical results on a
/// filter+map+sum query.
#[test]
fn models_agree() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0x30_DE15 + case);
        let n = rng.gen_range(0usize..400);
        let data: Vec<i64> = (0..n).map(|_| rng.gen_range(-500i64..500)).collect();
        let threshold = rng.gen_range(-500i64..500);
        let factor = rng.gen_range(-10i64..10);
        let chunk_rows = rng.gen_range(1usize..67);
        run_models_agree_case(&data, threshold, factor, chunk_rows);
    }
}

/// Regression (was a stored proptest seed: `data = [], threshold = 0,
/// factor = 0, chunk_rows = 1`): a zero-row scan must flow through every
/// execution model — staging, streaming, host accumulation and output
/// collection all see zero chunks.
#[test]
fn zero_row_scan_through_every_model() {
    run_models_agree_case(&[], 0, 0, 1);
}

fn run_join_case(build_keys: &[i64], probe_keys: &[i64], chunk_rows: usize, model: ExecutionModel) {
    let payload: Vec<i64> = build_keys.iter().map(|k| k * 7 + 1).collect();
    let (mut e, dev) = engine(chunk_rows);
    let mut pb = PlanBuilder::new(dev);
    let mut b = pb.scan("b", &["bk", "bp"]);
    let ht = b.hash_build(&mut pb, "bk", &["bp"], 64).unwrap();
    let mut p = pb.scan("p", &["pk"]);
    p.hash_probe(&mut pb, "pk", ht, &["bp"]).unwrap();
    let bp = p.materialized(&mut pb, "bp").unwrap();
    let sum = pb.agg_block(bp, AggFunc::Sum, "sum");
    let cnt = pb.agg_block(bp, AggFunc::Count, "cnt");
    pb.output("sum", sum);
    pb.output("cnt", cnt);
    let graph = pb.build().unwrap();
    let mut inputs = QueryInputs::new();
    inputs.bind("bk", build_keys.to_vec());
    inputs.bind("bp", payload.clone());
    inputs.bind("pk", probe_keys.to_vec());
    let (out, _) = e.run(&graph, &inputs, model).unwrap();

    let mut expect_sum = 0i64;
    let mut expect_cnt = 0i64;
    for &pk in probe_keys {
        for (i, &bk) in build_keys.iter().enumerate() {
            if bk == pk {
                expect_sum += payload[i];
                expect_cnt += 1;
            }
        }
    }
    assert_eq!(out.i64_column("sum")[0], expect_sum);
    assert_eq!(out.i64_column("cnt")[0], expect_cnt);
}

/// Join results match a host nested-loop join (sum of matched
/// payloads), including duplicate keys on the build side.
#[test]
fn join_matches_nested_loop() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0x10_1177 + case);
        let nb = rng.gen_range(0usize..120);
        let build_keys: Vec<i64> = (0..nb).map(|_| rng.gen_range(0i64..50)).collect();
        let np = rng.gen_range(0usize..200);
        let probe_keys: Vec<i64> = (0..np).map(|_| rng.gen_range(0i64..80)).collect();
        let chunk_rows = rng.gen_range(1usize..53);
        run_join_case(
            &build_keys,
            &probe_keys,
            chunk_rows,
            ExecutionModel::Chunked,
        );
    }
}

/// Regression (was a stored proptest seed: `build_keys = [], probe_keys =
/// [], chunk_rows = 1`): an empty build side must yield a valid empty hash
/// table and an empty probe must produce well-formed zero aggregates — in
/// every execution model, since each handles the zero-chunk build and
/// probe pipelines differently.
#[test]
fn empty_join_sides_through_every_model() {
    for model in ExecutionModel::ALL {
        run_join_case(&[], &[], 1, model);
    }
}

/// Group-by aggregation matches a host hash map under chunking.
#[test]
fn group_by_matches_host() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0x68_009B + case);
        let n = rng.gen_range(0usize..300);
        let rows: Vec<(i64, i64)> = (0..n)
            .map(|_| (rng.gen_range(0i64..20), rng.gen_range(-100i64..100)))
            .collect();
        let chunk_rows = rng.gen_range(1usize..71);

        let keys: Vec<i64> = rows.iter().map(|(k, _)| *k).collect();
        let vals: Vec<i64> = rows.iter().map(|(_, v)| *v).collect();
        let (mut e, dev) = engine(chunk_rows);
        let mut pb = PlanBuilder::new(dev);
        let mut s = pb.scan("t", &["k", "v"]);
        let ht = s
            .hash_agg(
                &mut pb,
                "k",
                &[],
                &[(AggFunc::Sum, "v"), (AggFunc::Count, "v")],
                32,
            )
            .unwrap();
        let groups = pb.group_result(ht, 0, 2);
        let perm = pb.sort(&[(groups.keys, false)]);
        let gk = pb.take(groups.keys, perm);
        let gs = pb.take(groups.states[0], perm);
        let gc = pb.take(groups.states[1], perm);
        pb.output("k", gk);
        pb.output("sum", gs);
        pb.output("count", gc);
        let graph = pb.build().unwrap();
        let mut inputs = QueryInputs::new();
        inputs.bind("k", keys.clone());
        inputs.bind("v", vals.clone());
        let (out, _) = e
            .run(&graph, &inputs, ExecutionModel::FourPhasePipelined)
            .unwrap();

        let mut expected: std::collections::BTreeMap<i64, (i64, i64)> = Default::default();
        for (k, v) in &rows {
            let e = expected.entry(*k).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        let exp_keys: Vec<i64> = expected.keys().copied().collect();
        let exp_sums: Vec<i64> = expected.values().map(|e| e.0).collect();
        let exp_counts: Vec<i64> = expected.values().map(|e| e.1).collect();
        assert_eq!(out.i64_column("k"), &exp_keys[..], "case {case}");
        assert_eq!(out.i64_column("sum"), &exp_sums[..], "case {case}");
        assert_eq!(out.i64_column("count"), &exp_counts[..], "case {case}");
    }
}

/// SORT permutation + MATERIALIZE_POSITION equals host sorting.
#[test]
fn sort_matches_host() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0x50_2700 + case);
        let n = rng.gen_range(0usize..200);
        let data: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let desc = rng.gen_bool(0.5);

        let (mut e, dev) = engine(1024);
        let mut pb = PlanBuilder::new(dev);
        let mut s = pb.scan("t", &["x"]);
        let x = s.materialized(&mut pb, "x").unwrap();
        let perm = pb.sort(&[(x, desc)]);
        let sorted = pb.take(x, perm);
        pb.output("sorted", sorted);
        let graph = pb.build().unwrap();
        let mut inputs = QueryInputs::new();
        inputs.bind("x", data.clone());
        let (out, _) = e
            .run(&graph, &inputs, ExecutionModel::OperatorAtATime)
            .unwrap();

        let mut expected = data.clone();
        expected.sort_unstable();
        if desc {
            expected.reverse();
        }
        assert_eq!(out.i64_column("sorted"), &expected[..], "case {case}");
    }
}

/// Bitmap conjunction of two filters equals host AND, any chunking.
#[test]
fn bitmap_and_matches_host() {
    for case in 0..48u64 {
        let mut rng = Rng::new(0xB17_A2D + case);
        let n = rng.gen_range(0usize..400);
        let data: Vec<i64> = (0..n).map(|_| rng.gen_range(0i64..100)).collect();
        let a = rng.gen_range(0i64..100);
        let b = rng.gen_range(0i64..100);
        let chunk_rows = rng.gen_range(1usize..61);

        let (mut e, dev) = engine(chunk_rows);
        let mut pb = PlanBuilder::new(dev);
        let mut s = pb.scan("t", &["x"]);
        s.filter(
            &mut pb,
            Predicate::and(vec![
                Predicate::cmp("x", CmpOp::Ge, a),
                Predicate::cmp("x", CmpOp::Le, b),
            ]),
        )
        .unwrap();
        let x = s.materialized(&mut pb, "x").unwrap();
        let cnt = pb.agg_block(x, AggFunc::Count, "count");
        pb.output("count", cnt);
        let graph = pb.build().unwrap();
        let mut inputs = QueryInputs::new();
        inputs.bind("x", data.clone());
        let (out, _) = e.run(&graph, &inputs, ExecutionModel::Pipelined).unwrap();
        let expected = data.iter().filter(|&&v| v >= a && v <= b).count() as i64;
        assert_eq!(out.i64_column("count")[0], expected, "case {case}");
    }
}
