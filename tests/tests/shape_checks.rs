//! Paper-shape regression checks: the §V headline findings, asserted as
//! orderings over the modeled results so any cost-model or runtime change
//! that breaks a reproduced finding fails CI.

use adamant::prelude::*;

fn run(
    profile: &DeviceProfile,
    q: TpchQuery,
    catalog: &Catalog,
    model: ExecutionModel,
    chunk_rows: usize,
) -> ExecutionStats {
    // The §V shapes are claims about per-primitive execution as the paper
    // measured it, so the shape harness runs with fusion off (the fused
    // pipeline compresses exactly the chains whose relative costs these
    // orderings assert).
    let mut engine = Adamant::builder()
        .chunk_rows(chunk_rows)
        .fusion(false)
        .device(profile.clone())
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    let graph = q.plan(dev, catalog).unwrap();
    let inputs = q.bind(catalog).unwrap();
    let (_, stats) = engine.run(&graph, &inputs, model).unwrap();
    stats
}

fn catalog() -> Catalog {
    TpchGenerator::new(0.02, 0xADA).generate()
}

#[test]
fn four_phase_beats_chunked_on_deep_pipelines() {
    // §V: "four-phased execution has a speed-up of 3x (best case - Q6)
    // until 1.3x (worst case)" — assert the band 1.2x..4x on the GPUs.
    let cat = catalog();
    for profile in [
        DeviceProfile::cuda_rtx2080ti(),
        DeviceProfile::opencl_rtx2080ti(),
    ] {
        for q in TpchQuery::PAPER_SET {
            let chunked = run(&profile, q, &cat, ExecutionModel::Chunked, 1 << 13);
            let fp = run(
                &profile,
                q,
                &cat,
                ExecutionModel::FourPhasePipelined,
                1 << 13,
            );
            let speedup = chunked.total_ns / fp.total_ns;
            assert!(
                (1.2..4.5).contains(&speedup),
                "{q} on {}: speedup {speedup:.2} outside the paper band",
                profile.name
            );
        }
    }
}

#[test]
fn q6_is_the_best_case_for_four_phase_on_cuda() {
    let cat = catalog();
    let profile = DeviceProfile::cuda_rtx2080ti();
    let speedup = |q: TpchQuery| {
        let c = run(&profile, q, &cat, ExecutionModel::Chunked, 1 << 13);
        let f = run(
            &profile,
            q,
            &cat,
            ExecutionModel::FourPhasePipelined,
            1 << 13,
        );
        c.total_ns / f.total_ns
    };
    let q6 = speedup(TpchQuery::Q6);
    let q3 = speedup(TpchQuery::Q3);
    assert!(q6 > q3, "Q6 ({q6:.2}x) should out-gain Q3 ({q3:.2}x)");
}

#[test]
fn cuda_outruns_opencl_on_every_query_and_model() {
    // Fig. 11: "OpenCL performs worse in general compared to CUDA".
    let cat = catalog();
    for q in TpchQuery::PAPER_SET {
        for model in [ExecutionModel::Chunked, ExecutionModel::FourPhasePipelined] {
            let cuda = run(&DeviceProfile::cuda_rtx2080ti(), q, &cat, model, 1 << 13);
            let ocl = run(&DeviceProfile::opencl_rtx2080ti(), q, &cat, model, 1 << 13);
            assert!(
                cuda.total_ns < ocl.total_ns,
                "{q}/{model}: cuda {} !< opencl {}",
                cuda.total_ns,
                ocl.total_ns
            );
        }
    }
}

#[test]
fn opencl_has_the_largest_abstraction_overhead() {
    // Fig. 10: maximum overhead for OpenCL wrappers.
    let cat = catalog();
    let total_overhead = |profile: &DeviceProfile| -> f64 {
        TpchQuery::PAPER_SET
            .iter()
            .map(|&q| run(profile, q, &cat, ExecutionModel::Chunked, 1 << 13).overhead_ns())
            .sum()
    };
    let ocl_gpu = total_overhead(&DeviceProfile::opencl_rtx2080ti());
    let cuda = total_overhead(&DeviceProfile::cuda_rtx2080ti());
    let omp = total_overhead(&DeviceProfile::openmp_cpu_i7());
    assert!(ocl_gpu > cuda, "opencl {ocl_gpu} !> cuda {cuda}");
    assert!(ocl_gpu > omp, "opencl {ocl_gpu} !> openmp {omp}");
}

#[test]
fn transfer_dominates_so_pipelining_gain_is_bounded() {
    // §V: "the execution of pipelining with transfer has a small impact,
    // since the transfer time dominates" — 4p-pipelined over 4p-chunked
    // must be a modest gain, far below the gain over naive chunked.
    let cat = catalog();
    let profile = DeviceProfile::cuda_rtx2080ti();
    let q = TpchQuery::Q6;
    let chunked = run(&profile, q, &cat, ExecutionModel::Chunked, 1 << 13).total_ns;
    let fpc = run(&profile, q, &cat, ExecutionModel::FourPhaseChunked, 1 << 13).total_ns;
    let fpp = run(
        &profile,
        q,
        &cat,
        ExecutionModel::FourPhasePipelined,
        1 << 13,
    )
    .total_ns;
    assert!(fpp <= fpc);
    let pipelining_gain = fpc / fpp;
    let four_phase_gain = chunked / fpc;
    assert!(
        pipelining_gain < 1.0 + (four_phase_gain - 1.0) * 2.0,
        "pipelining gain {pipelining_gain:.2} suspiciously large vs 4-phase gain {four_phase_gain:.2}"
    );
}

#[test]
fn baseline_q3_fails_while_adamant_streams() {
    // Fig. 11: "Q3 cannot be executed [on HeavyDB] for the given scale
    // factors, as the hash table size exceeds the maximum capacity".
    let cat = catalog();
    // Device sized between the Q4/Q6 and Q3 whole-table requirements.
    let probe = BaselineExecutor::new(DeviceProfile::cuda_rtx2080ti());
    let req = |q| {
        let r = probe.run(&cat, q).unwrap();
        probe.resident_bytes(&cat, q).unwrap()
            + r.stats
                .peak_device_bytes
                .values()
                .max()
                .copied()
                .unwrap_or(0)
    };
    let dev_mem = (req(TpchQuery::Q4).max(req(TpchQuery::Q6)) + req(TpchQuery::Q3)) / 2;
    let profile = DeviceProfile::cuda_rtx2080ti().with_memory(dev_mem, dev_mem / 4);

    let baseline = BaselineExecutor::new(profile.clone());
    assert!(baseline.run(&cat, TpchQuery::Q3).is_err(), "Q3 must OOM");
    let q4 = baseline.run(&cat, TpchQuery::Q4).expect("Q4 fits");
    let q6 = baseline.run(&cat, TpchQuery::Q6).expect("Q6 fits");

    // ADAMANT chunked executes Q3 on the same small device.
    let stats = run(
        &profile,
        TpchQuery::Q3,
        &cat,
        ExecutionModel::Chunked,
        1 << 12,
    );
    assert!(stats.total_ns > 0.0);

    // Cold start pays for whole tables and loses to 4-phase on every
    // query, by >2x in the best case (the paper's "up to 4x").
    let mut best_factor = 0.0f64;
    for (q, base) in [(TpchQuery::Q4, q4), (TpchQuery::Q6, q6)] {
        let fp = run(
            &profile,
            q,
            &cat,
            ExecutionModel::FourPhasePipelined,
            1 << 12,
        );
        let factor = base.cold_ns / fp.total_ns;
        assert!(
            factor > 1.3,
            "{q}: cold {} not clearly slower than 4p {}",
            base.cold_ns,
            fp.total_ns
        );
        best_factor = best_factor.max(factor);
        assert!(base.cold_ns > base.hot_ns);
    }
    assert!(
        best_factor > 2.0,
        "best cold-start penalty {best_factor:.2}x below the paper band"
    );
}

#[test]
fn chunk_size_tradeoff_exists() {
    // The paper fixes 2^25-int chunks as "optimal for the underlying GPU":
    // too-small chunks drown in per-chunk overhead; verify the overhead
    // trend (smaller chunks => more total time under chunked execution).
    let cat = catalog();
    let profile = DeviceProfile::cuda_rtx2080ti();
    let tiny = run(
        &profile,
        TpchQuery::Q6,
        &cat,
        ExecutionModel::Chunked,
        1 << 9,
    );
    let big = run(
        &profile,
        TpchQuery::Q6,
        &cat,
        ExecutionModel::Chunked,
        1 << 15,
    );
    assert!(
        tiny.total_ns > big.total_ns,
        "tiny chunks {} should cost more than big {}",
        tiny.total_ns,
        big.total_ns
    );
    assert!(tiny.chunks_processed > big.chunks_processed);
}
