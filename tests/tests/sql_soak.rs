//! Randomized SQL soak: a seeded generator emits random (but always
//! supported) SQL over a dimension/fact catalog; every query runs through
//! the full serving path — compile, footprint estimation, scheduler
//! admission, execution, typed decode — under every execution model, and
//! must agree exactly with the scalar host interpreter
//! ([`adamant::sql::prelude::run_sql_host`]). After each seed the device
//! pools and the admission ledger must be back at zero, and same-seed runs
//! must produce byte-identical executor statistics.
//!
//! The CI `sql` job shards this suite by seed through the `SQL_SEED`
//! environment variable (mirroring `CHAOS_SEED`/`SCHED_SEED`).

use adamant::prelude::*;
use adamant::sql::prelude::run_sql_host;
use adamant::sql::ColumnDecode;
use adamant::storage::catalog::Catalog;
use adamant::storage::column::Column;
use adamant::storage::datatype::{date_to_days, format_date};
use adamant::storage::table::Table;

const DEFAULT_SEEDS: [u64; 4] = [1, 7, 42, 1337];

fn seeds() -> Vec<u64> {
    match std::env::var("SQL_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("SQL_SEED must be an unsigned integer")],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

/// xorshift64* — deterministic, std-only.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `[lo, hi]`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

const CATS: [&str; 5] = ["north", "south", "east", "west", "polar"];
const MODES: [&str; 4] = ["air", "rail", "ship", "truck"];
const DIM_ROWS: i64 = 48;
const FACT_ROWS: i64 = 1500;

/// Dimension `d` (48 rows, unique key) + fact `f` (1500 rows, foreign key
/// into `d`), deterministic per seed. Sized so chunked execution sees
/// several chunks at `chunk_rows = 256`.
fn catalog(seed: u64) -> Catalog {
    let mut rng = Rng::new(seed ^ 0x0DA7_A5E7);
    let mut c = Catalog::new();

    let d_key: Vec<i64> = (0..DIM_ROWS).collect();
    let d_cat: Vec<&str> = (0..DIM_ROWS).map(|_| *rng.pick(&CATS)).collect();
    let d_val: Vec<i64> = (0..DIM_ROWS).map(|_| rng.range(0, 20)).collect();
    c.register(
        Table::new(
            "d",
            vec![
                Column::from_i64("d_key", d_key),
                Column::from_strings("d_cat", &d_cat),
                Column::from_i64("d_val", d_val),
            ],
        )
        .unwrap(),
    );

    let f_key: Vec<i64> = (0..FACT_ROWS).map(|_| rng.range(0, DIM_ROWS - 1)).collect();
    let f_v: Vec<i64> = (0..FACT_ROWS).map(|_| rng.range(-40, 60)).collect();
    let f_w: Vec<i64> = (0..FACT_ROWS).map(|_| rng.range(0, 9)).collect();
    let f_mode: Vec<&str> = (0..FACT_ROWS).map(|_| *rng.pick(&MODES)).collect();
    let f_day: Vec<i32> = (0..FACT_ROWS)
        .map(|_| date_to_days(1995, rng.range(1, 12) as u32, rng.range(1, 28) as u32))
        .collect();
    c.register(
        Table::new(
            "f",
            vec![
                Column::from_i64("f_key", f_key),
                Column::from_i64("f_v", f_v),
                Column::from_i64("f_w", f_w),
                Column::from_strings("f_mode", &f_mode),
                Column::from_dates("f_day", f_day),
            ],
        )
        .unwrap(),
    );
    c
}

/// One random fact-table predicate (always binder-supported: no ordering
/// comparisons on dictionary columns, only valid dates).
fn fact_pred(rng: &mut Rng) -> String {
    match rng.below(6) {
        0 => format!("f_v >= {}", rng.range(-40, 60)),
        1 => format!("f_v < {}", rng.range(-40, 60)),
        2 => {
            let a = rng.range(0, 7);
            format!("f_w BETWEEN {a} AND {}", rng.range(a, 9))
        }
        3 => format!("f_mode = '{}'", rng.pick(&MODES)),
        4 => format!("f_mode IN ('{}', '{}')", rng.pick(&MODES), rng.pick(&MODES)),
        _ => {
            let op = if rng.chance(2) { "<" } else { ">=" };
            format!(
                "f_day {op} DATE '1995-{:02}-{:02}'",
                rng.range(1, 12),
                rng.range(1, 28)
            )
        }
    }
}

/// One random dimension-table predicate.
fn dim_pred(rng: &mut Rng) -> String {
    match rng.below(3) {
        0 => format!("d_cat = '{}'", rng.pick(&CATS)),
        1 => format!("d_cat <> '{}'", rng.pick(&CATS)),
        _ => format!("d_val <= {}", rng.range(0, 20)),
    }
}

/// A random WHERE clause over `f` (and `d` when joined).
fn where_clause(rng: &mut Rng, joined: bool) -> String {
    let n = rng.range(1, 3);
    let mut preds = Vec::new();
    for _ in 0..n {
        if joined && rng.chance(3) {
            preds.push(dim_pred(rng));
        } else {
            preds.push(fact_pred(rng));
        }
    }
    format!(" WHERE {}", preds.join(" AND "))
}

/// A random aggregate list (1–3 aggregates, always with distinct names).
fn agg_list(rng: &mut Rng, joined: bool) -> String {
    let mut pool: Vec<String> = vec![
        "SUM(f_v) AS s_v".into(),
        "COUNT(*) AS n".into(),
        "MIN(f_v) AS lo_v".into(),
        "MAX(f_v) AS hi_v".into(),
        "SUM(f_v * (10 - f_w)) AS s_expr".into(),
        format!(
            "SUM(CASE WHEN f_mode = '{}' THEN f_v ELSE 0 END) AS s_case",
            rng.pick(&MODES)
        ),
    ];
    if joined {
        // Mixes a raw fact column with a join payload — the Q14 shape.
        pool.push("SUM(f_v * d_val) AS s_cross".into());
        pool.push("MAX(d_val) AS hi_d".into());
    }
    let n = rng.range(1, 3) as usize;
    let mut picked = Vec::new();
    for _ in 0..n {
        let i = rng.below(pool.len() as u64) as usize;
        picked.push(pool.swap_remove(i));
    }
    picked.join(", ")
}

/// One random, always-supported SQL query.
fn gen_query(rng: &mut Rng) -> String {
    match rng.below(4) {
        // Plain single-table scan (row order is scan order on both paths).
        0 => {
            let cols = [
                "f_v, f_w",
                "f_mode, f_v",
                "f_day, f_v",
                "f_v * 2 + f_w AS z",
            ];
            let mut q = format!(
                "SELECT {} FROM f{}",
                rng.pick(&cols),
                where_clause(rng, false)
            );
            if rng.chance(2) {
                q.push_str(&format!(" LIMIT {}", rng.range(1, 40)));
            }
            q
        }
        // Whole-input aggregate, single table.
        1 => format!(
            "SELECT {} FROM f{}",
            agg_list(rng, false),
            where_clause(rng, false)
        ),
        // Whole-input aggregate over a join (both fold orientations).
        2 => {
            let (from, join) = if rng.chance(2) {
                ("f", " JOIN d ON d_key = f_key")
            } else {
                ("d", " JOIN f ON f_key = d_key")
            };
            format!(
                "SELECT {} FROM {from}{join}{}",
                agg_list(rng, true),
                where_clause(rng, true)
            )
        }
        // Grouped aggregate, optional join / ORDER BY / LIMIT.
        _ => {
            let joined = rng.chance(2);
            let group = if joined {
                *rng.pick(&["d_cat", "f_mode", "f_mode, f_w"])
            } else {
                *rng.pick(&["f_mode", "f_w", "f_mode, f_w"])
            };
            let aggs = agg_list(rng, joined);
            let first_agg = aggs
                .split(" AS ")
                .nth(1)
                .unwrap()
                .split([',', ' '])
                .next()
                .unwrap()
                .to_string();
            let join = if joined {
                " JOIN d ON d_key = f_key"
            } else {
                ""
            };
            let mut q = format!(
                "SELECT {group}, {aggs} FROM f{join}{} GROUP BY {group}",
                where_clause(rng, joined)
            );
            if rng.chance(2) {
                let dir = if rng.chance(2) { " DESC" } else { "" };
                q.push_str(&format!(" ORDER BY {first_agg}{dir}"));
            }
            if rng.chance(3) {
                q.push_str(&format!(" LIMIT {}", rng.range(1, 8)));
            }
            q
        }
    }
}

/// Decodes one oracle row of raw i64 values with the compiled decoders, so
/// it compares exactly against the session's typed rows.
fn decode_oracle_row(
    catalog: &Catalog,
    outputs: &[adamant::sql::OutputColumn],
    raw: &[i64],
) -> Vec<SqlValue> {
    raw.iter()
        .zip(outputs)
        .map(|(&v, o)| match &o.decode {
            ColumnDecode::Int => SqlValue::Int(v),
            ColumnDecode::Date => SqlValue::Date(format_date(v as i32)),
            ColumnDecode::Dict { table, column } => {
                let dict_owner = catalog.table(table).unwrap();
                let col = dict_owner.column(column).unwrap();
                SqlValue::Str(col.dictionary().unwrap()[v as usize].clone())
            }
        })
        .collect()
}

const QUERIES_PER_SEED: usize = 24;

/// Drops the `wall_ns` field — the only real-wall-clock value in the
/// stats export; everything else runs on the modeled timeline and must be
/// byte-identical across same-seed runs.
fn strip_wall_ns(json: &str) -> String {
    match json.find("\"wall_ns\":") {
        None => json.to_string(),
        Some(start) => {
            let rest = &json[start..];
            let end = rest.find(',').map_or(json.len(), |i| start + i + 1);
            format!("{}{}", &json[..start], &json[end..])
        }
    }
}

/// One full soak pass: generate, serve under every model, check against
/// the oracle. Returns per-query executor stats JSON (first model) for the
/// determinism check.
fn soak_run(seed: u64) -> Vec<String> {
    let catalog = catalog(seed);
    let mut engine = Adamant::builder()
        .chunk_rows(256)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    let mut rng = Rng::new(seed);
    let mut stats_jsons = Vec::new();

    for qi in 0..QUERIES_PER_SEED {
        let sql = gen_query(&mut rng);
        let compiled = adamant::sql::compile(&sql, &catalog, dev)
            .unwrap_or_else(|e| panic!("seed {seed} query {qi} failed to compile: {e}\n  {sql}"));
        let oracle_raw = run_sql_host(&sql, &catalog)
            .unwrap_or_else(|e| panic!("seed {seed} query {qi} oracle failed: {e}\n  {sql}"));
        let want: Vec<Vec<SqlValue>> = oracle_raw
            .iter()
            .map(|row| decode_oracle_row(&catalog, &compiled.outputs, row))
            .collect();

        for (mi, &model) in ExecutionModel::ALL.iter().enumerate() {
            let rs = Session::new(&mut engine, &catalog)
                .tenant("soak", 1.0)
                .model(model)
                .sql(&sql)
                .unwrap_or_else(|e| panic!("seed {seed} query {qi} under {model}: {e}\n  {sql}"));
            assert_eq!(
                rs.rows, want,
                "seed {seed} query {qi} under {model} diverged from oracle:\n  {sql}"
            );
            assert!(rs.footprint_bytes > 0, "footprint feeds admission");
            if mi == 0 {
                stats_jsons.push(strip_wall_ns(&rs.stats.to_json()));
            }
        }
    }

    // The serving layer must leave no residue: pools and the admission
    // ledger return to zero after every query.
    for &d in engine.device_ids() {
        let pool = engine.executor().devices().get(d).unwrap().pool();
        assert_eq!(pool.used(), 0, "seed {seed}: leaked bytes on {d}");
        assert_eq!(
            pool.pinned_used(),
            0,
            "seed {seed}: leaked pinned bytes on {d}"
        );
        assert_eq!(
            pool.admission_reserved(),
            0,
            "seed {seed}: leaked admission reservation on {d}"
        );
    }
    stats_jsons
}

#[test]
fn random_sql_agrees_with_host_oracle_under_every_model() {
    for seed in seeds() {
        let first = soak_run(seed);
        assert_eq!(first.len(), QUERIES_PER_SEED);
        // Same seed, fresh engine and catalog: byte-identical stats (the
        // timeline is fully modeled — no wall clock anywhere).
        let second = soak_run(seed);
        assert_eq!(
            first, second,
            "seed {seed}: executor stats drifted between identical runs"
        );
    }
}

/// The generator itself is deterministic: same seed, same SQL texts. A
/// regression here would silently decouple the CI shards from each other.
#[test]
fn generator_is_deterministic_per_seed() {
    for seed in [3u64, 99, 2026] {
        let a: Vec<String> = {
            let mut rng = Rng::new(seed);
            (0..QUERIES_PER_SEED).map(|_| gen_query(&mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = Rng::new(seed);
            (0..QUERIES_PER_SEED).map(|_| gen_query(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
