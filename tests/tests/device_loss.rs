//! Permanent device-loss soak: hot-unplug mid-query, full-engine recovery
//! on the survivors, and hot-add through the health probe ramp. A device
//! that dies stays dead — the engine must write off its buffers without
//! calling into it, re-stage lost inputs from host copies, finish the
//! query reference-exact on the survivors (or fail with a clean typed
//! error when none remain), and leave zero leaked bytes everywhere.
//!
//! The CI `device-loss` job shards the seeded soak by seed through the
//! `DEVLOSS_SEED` environment variable (mirroring the `chaos` job).

use adamant::prelude::*;

const DEFAULT_SEEDS: [u64; 4] = [1, 7, 42, 1337];

/// The chunk-streaming execution models — everything but operator-at-a-time.
const CHUNKED_MODELS: [ExecutionModel; 4] = [
    ExecutionModel::Chunked,
    ExecutionModel::Pipelined,
    ExecutionModel::FourPhaseChunked,
    ExecutionModel::FourPhasePipelined,
];

fn seeds() -> Vec<u64> {
    match std::env::var("DEVLOSS_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("DEVLOSS_SEED must be an unsigned integer")],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

/// Zero-leak check over the devices *still plugged in* — dead devices are
/// removed from the registry, so `engine.device_ids()` (the facade's
/// creation-time snapshot) would dangle; the live registry is the truth.
fn assert_no_leaks(engine: &mut Adamant, context: &str) {
    engine.executor_mut().clear_residency();
    let live: Vec<DeviceId> = engine.executor().devices().ids();
    for d in live {
        let dev = engine.executor().devices().get(d).unwrap();
        assert_eq!(dev.pool().used(), 0, "{context}: leaked bytes on {d}");
        assert_eq!(
            dev.pool().pinned_used(),
            0,
            "{context}: leaked pinned bytes on {d}"
        );
        assert_eq!(
            dev.pool().admission_reserved(),
            0,
            "{context}: leaked admission reservation on {d}"
        );
    }
}

fn gone_error(err: &ExecError) -> bool {
    use adamant::device::error::DeviceError;
    matches!(
        err,
        ExecError::Device(DeviceError::Gone { .. })
            | ExecError::KernelFailed {
                source: DeviceError::Gone { .. },
                ..
            }
    )
}

/// Acceptance: a three-device engine loses one device permanently
/// mid-query, finishes reference-exact on the survivors, leaks nothing,
/// and a hot-added replacement picks up work on the very next run.
#[test]
fn device_death_mid_query_recovers_and_hot_add_takes_work() {
    let catalog = TpchGenerator::new(0.001, 7).generate();
    let reference = adamant::tpch::reference::q6(&catalog).unwrap();
    let mut engine = Adamant::builder()
        .chunk_rows(500)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .device(DeviceProfile::openmp_cpu_i7())
        .fault_plan(0, FaultPlan::none().die_on_exec(3))
        .build()
        .unwrap();
    let dev0 = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev0, &catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(&catalog).unwrap();

    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(
        adamant::tpch::queries::q6::decode(&out),
        reference,
        "query diverged from reference after device death"
    );
    assert_eq!(stats.device_deaths, 1, "exactly one device died");
    assert!(
        stats.buffers_written_off > 0,
        "the dead device held buffers that must be written off"
    );
    assert!(
        stats.restaged_bytes > 0,
        "lost input bytes must be re-staged onto survivors"
    );
    // The corpse is unplugged; only the survivors remain.
    let live = engine.executor().devices().ids();
    assert_eq!(live.len(), 2, "dead device must leave the registry");
    assert!(!live.contains(&dev0), "the dead device must be gone");
    assert_no_leaks(&mut engine, "after death recovery");

    // Hot-add a replacement between runs: it enters the health registry in
    // the half-open probe ramp and the next run routes work onto it.
    let new_dev = engine
        .attach_profile(&DeviceProfile::cuda_rtx2080ti())
        .unwrap();
    assert!(engine.health().is_half_open(new_dev));
    let graph2 = TpchQuery::Q6.plan(new_dev, &catalog).unwrap();
    let (out2, stats2) = engine
        .run(&graph2, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(adamant::tpch::queries::q6::decode(&out2), reference);
    assert_eq!(stats2.hot_adds, 1, "the attach must be counted once");
    assert_eq!(stats2.device_deaths, 0);
    assert!(stats2.chunks_processed > 0);
    assert!(
        engine
            .executor()
            .devices()
            .get(new_dev)
            .unwrap()
            .clock()
            .total_ns()
            > 0.0,
        "the hot-added device must have executed work"
    );
    // The counter is per-run: it must not persist into the next run.
    let (_, stats3) = engine
        .run(&graph2, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(stats3.hot_adds, 0);
    assert_no_leaks(&mut engine, "after hot-add run");
}

/// Degenerate topology: the only device dies. The run must fail with the
/// typed `Gone` error — not a panic, not a hang — and nothing may leak
/// (trivially: the registry is empty afterwards).
#[test]
fn sole_device_death_is_a_typed_error() {
    let catalog = TpchGenerator::new(0.001, 1).generate();
    let mut engine = Adamant::builder()
        .chunk_rows(500)
        .device(DeviceProfile::cuda_rtx2080ti())
        .fault_plan(0, FaultPlan::none().die_on_exec(2))
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev, &catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
    let err = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap_err();
    assert!(gone_error(&err), "expected a Gone error, got: {err}");
    assert!(
        engine.executor().devices().is_empty(),
        "the corpse must be unplugged even when it was the last device"
    );
    assert_no_leaks(&mut engine, "after sole-device death");
}

/// Boundary cases around the end of a run: a death ordinal past the last
/// execute never fires (the run is untouched), and a death late on the
/// device clock still recovers reference-exact on the survivor.
#[test]
fn death_after_last_chunk_and_late_clock_death() {
    let catalog = TpchGenerator::new(0.001, 42).generate();
    let reference = adamant::tpch::reference::q6(&catalog).unwrap();

    // Ordinal far past the workload: the plan is armed but never fires.
    let mut engine = Adamant::builder()
        .chunk_rows(500)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .fault_plan(0, FaultPlan::none().die_on_exec(1_000_000))
        .build()
        .unwrap();
    let dev0 = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev0, &catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(adamant::tpch::queries::q6::decode(&out), reference);
    assert_eq!(stats.device_deaths, 0, "the death must not have fired");
    let clean_ns = engine
        .executor()
        .devices()
        .get(dev0)
        .unwrap()
        .clock()
        .total_ns();
    assert!(clean_ns > 0.0);
    assert_no_leaks(&mut engine, "unfired death plan");

    // Death at 98% of the clean run's device time: the device drops out
    // near the end, and the restart on the survivor must still be exact.
    let mut engine = Adamant::builder()
        .chunk_rows(500)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .fault_plan(0, FaultPlan::none().die_at_ns(clean_ns * 0.98))
        .build()
        .unwrap();
    let dev0 = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev0, &catalog).unwrap();
    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(
        adamant::tpch::queries::q6::decode(&out),
        reference,
        "late-clock death must recover reference-exact"
    );
    assert_eq!(stats.device_deaths, 1);
    assert_no_leaks(&mut engine, "late clock death");
}

/// One engine lifetime under a death plan: three back-to-back runs. The
/// first may lose device 0; later runs re-place the (stale) plan onto the
/// survivor and must stay reference-exact.
fn death_sweep(
    seed: u64,
    name: &str,
    plan: FaultPlan,
    model: ExecutionModel,
    catalog: &Catalog,
    reference: i64,
) -> (Vec<Result<i64, String>>, String) {
    let mut engine = Adamant::builder()
        .chunk_rows(500)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .residency_cache(ResidencyConfig::new(1 << 30))
        .fault_plan(0, plan)
        .retry_policy(RetryPolicy {
            max_attempts: 6,
            ..Default::default()
        })
        .build()
        .unwrap();
    let dev0 = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev0, catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(catalog).unwrap();
    let mut outcomes = Vec::new();
    let mut stats_json = String::new();
    for run in 0..3 {
        let context = format!("seed {seed} {name} {model:?} run {run}");
        match engine.run(&graph, &inputs, model) {
            Ok((out, stats)) => {
                let decoded = adamant::tpch::queries::q6::decode(&out);
                assert_eq!(decoded, reference, "{context}: diverged from reference");
                let mut stats = stats;
                stats.wall_ns = 0;
                stats_json.push_str(&stats.to_json());
                stats_json.push('\n');
                outcomes.push(Ok(decoded));
            }
            Err(err) => {
                assert!(
                    matches!(
                        err,
                        ExecError::Device(_)
                            | ExecError::KernelFailed { .. }
                            | ExecError::DeadlineExceeded { .. }
                            | ExecError::TransferCorrupted { .. }
                    ),
                    "{context}: unexpected error class: {err}"
                );
                outcomes.push(Err(err.to_string()));
            }
        }
        assert_no_leaks(&mut engine, &context);
    }
    (outcomes, stats_json)
}

/// Seeded death soak across every chunked model: deaths (alone and mixed
/// with chaos) are survivable, typed, leak-free, and — same seed, fresh
/// engine — byte-identically deterministic.
#[test]
fn seeded_death_soak_is_survivable_and_deterministic() {
    for seed in seeds() {
        let catalog = TpchGenerator::new(0.001, seed).generate();
        let reference = adamant::tpch::reference::q6(&catalog).unwrap();
        let plans: Vec<(&str, FaultPlan)> = vec![
            ("exec-death", FaultPlan::none().die_on_exec(5)),
            (
                "seeded-death",
                FaultPlan::none().with_seed(seed).death_rate(0.05),
            ),
            (
                "death+chaos",
                FaultPlan::none()
                    .with_seed(seed)
                    .death_rate(0.03)
                    .slowdown(3.0)
                    .oom_on_allocation(2),
            ),
        ];
        for model in CHUNKED_MODELS {
            for (name, plan) in &plans {
                let first = death_sweep(seed, name, plan.clone(), model, &catalog, reference);
                let second = death_sweep(seed, name, plan.clone(), model, &catalog, reference);
                assert_eq!(
                    first, second,
                    "seed {seed} {name} {model:?}: same-seed sweeps diverged"
                );
            }
        }
    }
}

/// Death *during recovery*: the second device dies while the engine is
/// re-staging checkpointed state onto it. With no survivors left the run
/// must terminate in a clean typed error — never a hang — and the emptied
/// registry trivially holds zero bytes.
#[test]
fn second_death_during_restage_is_a_typed_error() {
    let catalog = TpchGenerator::new(0.001, 7).generate();
    let mut engine = Adamant::builder()
        .chunk_rows(500)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .checkpoints(CheckpointConfig::enabled().cost_factor(0.0))
        .fault_plan(0, FaultPlan::none().die_on_exec(3))
        // The survivor's clock first moves when recovery restores the
        // snapshot onto it — and the first tick kills it.
        .fault_plan(1, FaultPlan::none().die_at_ns(1.0))
        .build()
        .unwrap();
    let dev0 = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev0, &catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
    let err = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap_err();
    assert!(
        matches!(
            err,
            ExecError::Device(_)
                | ExecError::KernelFailed { .. }
                | ExecError::TransferCorrupted { .. }
        ),
        "second death during re-staging must be typed, got: {err}"
    );
    assert!(
        engine.executor().devices().is_empty(),
        "both corpses must be unplugged"
    );
    assert_no_leaks(&mut engine, "second death during re-stage");
}

/// Sequential deaths with a survivor left: device 0 dies, recovery resumes
/// on device 1, which then also dies; the run must finish reference-exact
/// on device 2. This also pins the restart-bound fix: the per-run restart
/// allowance is refreshed after every *successful* recovery rather than
/// captured once at entry, so a second death never trips a stale bound.
#[test]
fn sequential_deaths_exhaust_down_to_the_last_survivor() {
    let catalog = TpchGenerator::new(0.001, 42).generate();
    let reference = adamant::tpch::reference::q6(&catalog).unwrap();
    let build = |second_death: Option<usize>| {
        let mut b = Adamant::builder()
            .chunk_rows(500)
            .device(DeviceProfile::cuda_rtx2080ti())
            .device(DeviceProfile::opencl_cpu_i7())
            .device(DeviceProfile::openmp_cpu_i7())
            .checkpoints(CheckpointConfig::enabled().cost_factor(0.0))
            .fault_plan(0, FaultPlan::none().die_on_exec(3));
        if let Some(idx) = second_death {
            b = b.fault_plan(idx, FaultPlan::none().die_on_exec(4));
        }
        b.build().unwrap()
    };

    // Phase A: only device 0 dies. Recovery re-points the work onto the
    // cost-model's preferred survivor; find out which one by its clock.
    let mut probe = build(None);
    let ids = probe.device_ids().to_vec();
    let dev0 = ids[0];
    let graph = TpchQuery::Q6.plan(dev0, &catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
    let (out, stats) = probe.run(&graph, &inputs, ExecutionModel::Chunked).unwrap();
    assert_eq!(adamant::tpch::queries::q6::decode(&out), reference);
    assert_eq!(stats.device_deaths, 1);
    let chosen_idx = (1..ids.len())
        .max_by(|&a, &b| {
            let ns = |i: usize| {
                probe
                    .executor()
                    .devices()
                    .get(ids[i])
                    .map(|d| d.clock().total_ns())
                    .unwrap_or(0.0)
            };
            ns(a).total_cmp(&ns(b))
        })
        .expect("two survivors");

    // Phase B: the same run, but the chosen survivor dies mid-re-run too.
    // The work must hop to the last device and still end reference-exact.
    let mut engine = build(Some(chosen_idx));
    let dev0 = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev0, &catalog).unwrap();
    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(
        adamant::tpch::queries::q6::decode(&out),
        reference,
        "two sequential deaths must still end reference-exact"
    );
    assert_eq!(stats.device_deaths, 2, "both scripted deaths must fire");
    assert_eq!(
        engine.executor().devices().ids().len(),
        1,
        "only the last survivor remains"
    );
    assert_no_leaks(&mut engine, "sequential deaths");
}

/// Death while a checkpoint is being captured: snapshots are assembled
/// off to the side and swapped in whole, so a death mid-capture leaves the
/// *previous* snapshot valid — recovery still terminates reference-exact
/// (resumed or fully restarted), never from a half-written checkpoint.
/// The death clock is swept across the run so some placements land inside
/// capture transfers.
#[test]
fn death_mid_capture_keeps_recovery_exact() {
    let catalog = TpchGenerator::new(0.001, 1).generate();
    let reference = adamant::tpch::reference::q6(&catalog).unwrap();
    // Fault-free run (checkpoints on, so capture time is on the clock).
    let clean_ns = {
        let mut engine = Adamant::builder()
            .chunk_rows(500)
            .device(DeviceProfile::cuda_rtx2080ti())
            .device(DeviceProfile::opencl_cpu_i7())
            .checkpoints(CheckpointConfig::enabled().cost_factor(0.0))
            .build()
            .unwrap();
        let dev0 = engine.device_ids()[0];
        let graph = TpchQuery::Q6.plan(dev0, &catalog).unwrap();
        let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
        engine
            .run(&graph, &inputs, ExecutionModel::Chunked)
            .unwrap();
        engine
            .executor()
            .devices()
            .get(dev0)
            .unwrap()
            .clock()
            .total_ns()
    };
    for frac in [0.3, 0.5, 0.7, 0.9] {
        let mut engine = Adamant::builder()
            .chunk_rows(500)
            .device(DeviceProfile::cuda_rtx2080ti())
            .device(DeviceProfile::opencl_cpu_i7())
            .checkpoints(CheckpointConfig::enabled().cost_factor(0.0))
            .fault_plan(0, FaultPlan::none().die_at_ns(clean_ns * frac))
            .build()
            .unwrap();
        let dev0 = engine.device_ids()[0];
        let graph = TpchQuery::Q6.plan(dev0, &catalog).unwrap();
        let inputs = TpchQuery::Q6.bind(&catalog).unwrap();
        let (out, stats) = engine
            .run(&graph, &inputs, ExecutionModel::Chunked)
            .unwrap();
        assert_eq!(
            adamant::tpch::queries::q6::decode(&out),
            reference,
            "death at {frac} of the clean run must stay exact"
        );
        assert_eq!(stats.device_deaths, 1, "the death at {frac} must fire");
        assert_no_leaks(&mut engine, &format!("death mid-capture at {frac}"));
    }
}

/// Scheduler-level membership: a device death mid-session must never wedge
/// `run_all`. Reservations stranded on the corpse are re-admitted against
/// survivors when they fit; when they cannot, the query is shed with the
/// typed `CapacityLost` reason — and the rest of the session proceeds.
#[test]
fn scheduler_sheds_capacity_lost_and_keeps_serving() {
    let catalog = TpchGenerator::new(0.001, 7).generate();
    let reference = adamant::tpch::reference::q6(&catalog).unwrap();
    // Big primary, deliberately small survivor: a reservation sized over
    // the survivor's whole pool cannot be re-homed after the death.
    let survivor_cap: u64 = 32 << 20;
    let mut engine = Adamant::builder()
        .chunk_rows(500)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7().with_memory(survivor_cap, 8 << 20))
        .fault_plan(0, FaultPlan::none().die_on_exec(3))
        .build()
        .unwrap();
    let dev0 = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev0, &catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(&catalog).unwrap();

    let mut session = engine.session();
    session.tenant("alpha", 1.0).tenant("beta", 1.0);
    // Ticket 1: pinned to the doomed device with a footprint bigger than
    // the survivor's entire pool — unreadmittable once dev0 dies.
    let doomed = session.submit(
        "alpha",
        QuerySpec::new(graph.clone(), inputs.clone(), ExecutionModel::Chunked)
            .pin_device(dev0)
            .with_footprint(2 * survivor_cap),
    );
    // Ticket 2: ordinary query, must complete on the survivor.
    let follower = session.submit(
        "beta",
        QuerySpec::new(graph.clone(), inputs.clone(), ExecutionModel::Chunked),
    );
    let report = session.run_all();
    match report.outcome(doomed) {
        Some(QueryOutcome::Shed {
            reason: ShedReason::CapacityLost,
        }) => {}
        other => panic!("doomed query must be shed for lost capacity, got {other:?}"),
    }
    match report.outcome(follower) {
        Some(QueryOutcome::Completed { output, .. }) => {
            assert_eq!(
                adamant::tpch::queries::q6::decode(output),
                reference,
                "follower diverged from reference"
            );
        }
        other => panic!("follower must complete on the survivor, got {other:?}"),
    }
    let stats = report.stats();
    assert_eq!(stats.shed_capacity_lost, 1);
    assert!(stats.device_deaths >= 1);
    assert!(stats.buffers_written_off >= 1);
    drop(report);
    assert_no_leaks(&mut engine, "scheduler capacity-lost session");
}

/// Scheduler-level re-homing: when the stranded reservation *does* fit a
/// survivor, the query is re-admitted there — completed, not shed.
#[test]
fn scheduler_rehomes_reservations_that_fit_survivors() {
    let catalog = TpchGenerator::new(0.001, 1).generate();
    let reference = adamant::tpch::reference::q6(&catalog).unwrap();
    let mut engine = Adamant::builder()
        .chunk_rows(500)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .fault_plan(0, FaultPlan::none().die_on_exec(3))
        .build()
        .unwrap();
    let dev0 = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev0, &catalog).unwrap();
    let inputs = TpchQuery::Q6.bind(&catalog).unwrap();

    let mut session = engine.session();
    session.tenant("alpha", 1.0);
    let tickets: Vec<_> = (0..3)
        .map(|_| {
            session.submit(
                "alpha",
                QuerySpec::new(graph.clone(), inputs.clone(), ExecutionModel::Chunked),
            )
        })
        .collect();
    let report = session.run_all();
    for &t in &tickets {
        match report.outcome(t) {
            Some(QueryOutcome::Completed { output, .. }) => {
                assert_eq!(adamant::tpch::queries::q6::decode(output), reference);
            }
            other => panic!("query must survive the death re-homed, got {other:?}"),
        }
    }
    let stats = report.stats();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.shed_capacity_lost, 0, "everything fit the survivor");
    assert!(
        stats.device_deaths >= 1,
        "the death must have been absorbed"
    );
    drop(report);
    assert_no_leaks(&mut engine, "scheduler re-home session");
}
