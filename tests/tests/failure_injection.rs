//! Failure injection: scripted device faults must either be survived by
//! the executor's recovery machinery (OOM chunk backoff, device fallback)
//! or fail cleanly (typed errors, no leaked device state), and the engine
//! must stay usable afterwards.

use adamant::prelude::*;

fn tiny_engine(mem: u64, pinned: u64, chunk_rows: usize) -> (Adamant, DeviceId) {
    let engine = Adamant::builder()
        .chunk_rows(chunk_rows)
        .device(DeviceProfile::cuda_rtx2080ti().with_memory(mem, pinned))
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    (engine, dev)
}

fn sum_query(dev: DeviceId) -> PrimitiveGraph {
    let mut pb = PlanBuilder::new(dev);
    let mut s = pb.scan("t", &["x"]);
    let x = s.materialized(&mut pb, "x").unwrap();
    let sum = pb.agg_block(x, AggFunc::Sum, "sum");
    pb.output("sum", sum);
    pb.build().unwrap()
}

/// Filter + project + sum: touches bitmap, map, materialize and agg
/// kernels, so faults can land in several places.
fn filter_map_sum(dev: DeviceId, threshold: i64, factor: i64) -> PrimitiveGraph {
    let mut pb = PlanBuilder::new(dev);
    let mut s = pb.scan("t", &["x"]);
    s.filter(&mut pb, Predicate::cmp("x", CmpOp::Ge, threshold))
        .unwrap();
    s.project(&mut pb, "y", Expr::col("x").mul(Expr::lit(factor)))
        .unwrap();
    let y = s.materialized(&mut pb, "y").unwrap();
    let sum = pb.agg_block(y, AggFunc::Sum, "sum");
    pb.output("sum", sum);
    pb.build().unwrap()
}

fn test_data(n: i64) -> Vec<i64> {
    (0..n).map(|i| (i * 37 + 11) % 500 - 250).collect()
}

fn expected_sum(data: &[i64], threshold: i64, factor: i64) -> i64 {
    data.iter()
        .filter(|&&v| v >= threshold)
        .map(|v| v * factor)
        .sum()
}

// ---- recovery: injected faults are survived -----------------------------

/// An injected OOM mid-stream makes the executor halve the chunk size and
/// re-run the pipeline; the query completes with the exact result.
#[test]
fn oom_fault_backoff_completes_chunked() {
    let data = test_data(200);
    for model in [ExecutionModel::Chunked, ExecutionModel::Pipelined] {
        let mut engine = Adamant::builder()
            .chunk_rows(32)
            // Fault scripting targets the unfused kernel names / allocation
            // ordinals, so run this scenario with fusion off.
            .fusion(false)
            .device(DeviceProfile::cuda_rtx2080ti())
            .fault_plan(0, FaultPlan::none().oom_on_allocation(3))
            .build()
            .unwrap();
        let dev = engine.device_ids()[0];
        let graph = filter_map_sum(dev, 0, 3);
        let mut inputs = QueryInputs::new();
        inputs.bind("x", data.clone());
        let (out, stats) = engine.run(&graph, &inputs, model).unwrap();
        assert_eq!(
            out.i64_column("sum")[0],
            expected_sum(&data, 0, 3),
            "{model:?}"
        );
        assert!(stats.retries > 0, "{model:?}: no retry recorded");
        assert!(stats.chunk_backoffs > 0, "{model:?}: no backoff recorded");
        assert_eq!(stats.fallback_placements, 0, "{model:?}");
        assert!(
            !stats.device_faults.is_empty(),
            "{model:?}: injected fault not attributed to the device"
        );
        // The device itself counted the injection.
        let counters = engine
            .executor()
            .devices()
            .get(dev)
            .unwrap()
            .fault_counters();
        assert_eq!(counters.oom_injected, 1);
    }
}

/// A kernel broken persistently on one device makes the executor re-place
/// the pipeline onto the second device, which completes the query.
#[test]
fn persistent_kernel_fault_falls_back_to_second_device() {
    let data = test_data(150);
    let mut engine = Adamant::builder()
        .chunk_rows(50)
        // Fault scripting targets the unfused kernel names / allocation
        // ordinals, so run this scenario with fusion off.
        .fusion(false)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .fault_plan(0, FaultPlan::none().broken_kernel("agg_block"))
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    let graph = filter_map_sum(dev, -100, 2);
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());
    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(out.i64_column("sum")[0], expected_sum(&data, -100, 2));
    assert!(stats.fallback_placements > 0, "no fallback recorded");
    assert!(stats.retries >= 2, "fallback needs two failed attempts");
    let counters = engine
        .executor()
        .devices()
        .get(dev)
        .unwrap()
        .fault_counters();
    assert!(counters.broken_kernel_hits >= 2);
}

/// A single transient kernel error is cleared by a plain retry on the same
/// device — no fallback placement happens.
#[test]
fn transient_kernel_fault_retries_without_fallback() {
    let data = test_data(100);
    let mut engine = Adamant::builder()
        .chunk_rows(32)
        .device(DeviceProfile::cuda_rtx2080ti())
        .fault_plan(0, FaultPlan::none().transient_exec_errors(1))
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    let graph = sum_query(dev);
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());
    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(out.i64_column("sum")[0], data.iter().sum::<i64>());
    assert!(stats.retries > 0);
    assert_eq!(stats.fallback_placements, 0);
}

/// Every execution model produces results identical to its fault-free run
/// under both fault scenarios (OOM backoff; persistent kernel fault with a
/// capable second device).
#[test]
fn faulted_runs_match_fault_free_across_models() {
    let data = test_data(180);
    let (threshold, factor) = (-50, 3);
    for model in ExecutionModel::ALL {
        let run = |faults: Option<FaultPlan>, two_devices: bool| -> i64 {
            let mut b = Adamant::builder()
                .chunk_rows(41)
                .device(DeviceProfile::cuda_rtx2080ti());
            if two_devices {
                b = b.device(DeviceProfile::opencl_cpu_i7());
            }
            if let Some(plan) = faults {
                b = b.fault_plan(0, plan);
            }
            let mut engine = b.build().unwrap();
            let dev = engine.device_ids()[0];
            let graph = filter_map_sum(dev, threshold, factor);
            let mut inputs = QueryInputs::new();
            inputs.bind("x", data.clone());
            let (out, _) = engine.run(&graph, &inputs, model).unwrap();
            out.i64_column("sum")[0]
        };
        let clean = run(None, false);
        assert_eq!(clean, expected_sum(&data, threshold, factor), "{model:?}");
        let oom = run(Some(FaultPlan::none().oom_on_allocation(3)), false);
        assert_eq!(oom, clean, "{model:?}: OOM recovery changed the result");
        let fallback = run(Some(FaultPlan::none().broken_kernel("agg_block")), true);
        assert_eq!(
            fallback, clean,
            "{model:?}: fallback placement changed the result"
        );
    }
}

/// After faulted runs — recovered or not — every device pool is back to
/// zero bytes: recovery rollback and the delete phase leak nothing.
#[test]
fn no_leaks_after_faulted_runs() {
    let data = test_data(120);
    let mut engine = Adamant::builder()
        .chunk_rows(16)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .fault_plan(
            0,
            FaultPlan::none()
                .oom_on_allocation(3)
                .oom_on_allocation(7)
                .broken_kernel("agg_block"),
        )
        // Two OOM backoffs plus the two strikes before fallback exceed the
        // default attempt budget; give this chaos run more headroom.
        .retry_policy(RetryPolicy {
            max_attempts: 8,
            ..Default::default()
        })
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    let graph = filter_map_sum(dev, 0, 2);
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.clone());
    for model in ExecutionModel::ALL {
        let (out, _) = engine.run(&graph, &inputs, model).unwrap();
        assert_eq!(out.i64_column("sum")[0], expected_sum(&data, 0, 2));
        for &d in engine.device_ids() {
            let used = engine.executor().devices().get(d).unwrap().pool().used();
            assert_eq!(used, 0, "{model:?}: leaked {used} bytes on {d}");
            let pinned = engine
                .executor()
                .devices()
                .get(d)
                .unwrap()
                .pool()
                .pinned_used();
            assert_eq!(pinned, 0, "{model:?}: leaked {pinned} pinned bytes on {d}");
        }
    }
}

// ---- overlap stress: fetched/processed ordering --------------------------

/// Many tiny chunks through the overlapped models, repeatedly, on one
/// engine: exercises the `fetched_until`-before-send ordering (a debug
/// build would trip the executor's `fetched > processed` assertion if the
/// counters raced) and per-pipeline cleanup across runs.
#[test]
fn overlap_stress_many_tiny_chunks() {
    let data = test_data(300);
    let expected: i64 = data.iter().sum();
    for model in [
        ExecutionModel::Pipelined,
        ExecutionModel::FourPhasePipelined,
    ] {
        let mut engine = Adamant::builder()
            .chunk_rows(1) // 300 chunks, staging_buffers = 2
            .device(DeviceProfile::cuda_rtx2080ti())
            .build()
            .unwrap();
        let dev = engine.device_ids()[0];
        let graph = sum_query(dev);
        let mut inputs = QueryInputs::new();
        inputs.bind("x", data.clone());
        for round in 0..5 {
            let (out, stats) = engine.run(&graph, &inputs, model).unwrap();
            assert_eq!(
                out.i64_column("sum")[0],
                expected,
                "{model:?} round {round}"
            );
            assert_eq!(stats.chunks_processed, 300, "{model:?} round {round}");
            let used = engine.executor().devices().get(dev).unwrap().pool().used();
            assert_eq!(used, 0, "{model:?} round {round}: leaked {used} bytes");
        }
    }
}

// ---- determinism ---------------------------------------------------------

/// A multi-device query reports byte-identical statistics across repeated
/// runs (modulo the real wall clock): routing sources, placement and
/// accounting must all be deterministic.
#[test]
fn multi_device_stats_byte_identical() {
    let run_once = || -> String {
        let mut engine = Adamant::builder()
            .chunk_rows(64)
            .device(DeviceProfile::cuda_rtx2080ti())
            .device(DeviceProfile::opencl_cpu_i7())
            .build()
            .unwrap();
        let (d0, d1) = (engine.device_ids()[0], engine.device_ids()[1]);
        // Build pipeline on device 0, probe pipeline on device 1: the hash
        // table crosses devices through the hub's router.
        let mut b = GraphBuilder::new();
        let bk = b.scan_input("build", "bk");
        let bp = b.scan_input("build", "bp");
        let ht = b.add(
            PrimitiveKind::HashBuild,
            NodeParams::HashBuild {
                payload_cols: 1,
                expected: 64,
            },
            vec![bk, bp],
            1,
            d0,
            "build",
        );
        let pk = b.scan_input("probe", "pk");
        let probe = b.add(
            PrimitiveKind::HashProbe,
            NodeParams::HashProbe { payload_outs: 1 },
            vec![pk, ht[0]],
            2,
            d1,
            "probe",
        );
        let agg = b.add(
            PrimitiveKind::AggBlock,
            NodeParams::AggBlock { agg: AggFunc::Sum },
            vec![probe[1]],
            1,
            d1,
            "sum_payload",
        );
        b.output("sum", agg[0]);
        let graph = b.build().unwrap();

        let bk: Vec<i64> = (0..50).collect();
        let bp: Vec<i64> = (0..50).map(|k| k * 100).collect();
        let pk: Vec<i64> = (0..200).map(|i| (i % 60) as i64).collect();
        let expected: i64 = pk.iter().filter(|&&k| k < 50).map(|&k| k * 100).sum();
        let mut inputs = QueryInputs::new();
        inputs.bind("bk", bk);
        inputs.bind("bp", bp);
        inputs.bind("pk", pk);
        let (out, mut stats) = engine
            .run(&graph, &inputs, ExecutionModel::Chunked)
            .unwrap();
        assert_eq!(out.i64_column("sum")[0], expected);
        stats.wall_ns = 0; // the only genuinely nondeterministic field
        stats.to_json()
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "stats drifted between identical runs");
}

// ---- clean failures: unrecoverable errors stay typed ---------------------

#[test]
fn engine_reusable_after_oom() {
    let (mut engine, dev) = tiny_engine(1 << 20, 1 << 18, 1 << 20);
    let graph = sum_query(dev);

    // Too big: OAAT needs the whole 8 MiB column on a 1 MiB device, and no
    // amount of retrying helps (the OOM is capacity, not a transient).
    let mut big = QueryInputs::new();
    big.bind("x", vec![1i64; 1 << 20]);
    let err = engine
        .run(&graph, &big, ExecutionModel::OperatorAtATime)
        .unwrap_err();
    assert!(matches!(err, ExecError::Device(_)), "typed OOM, got {err}");

    // The failed run must have cleaned up: a small query now succeeds on
    // the same engine, and its stats are untainted.
    let mut small = QueryInputs::new();
    small.bind("x", vec![1i64; 1000]);
    let (out, stats) = engine
        .run(&graph, &small, ExecutionModel::OperatorAtATime)
        .unwrap();
    assert_eq!(out.i64_column("sum")[0], 1000);
    assert!(stats.total_ns > 0.0);
    // All buffers of both runs released.
    let used = engine.executor().devices().get(dev).unwrap().pool().used();
    assert_eq!(used, 0, "leaked {used} bytes after runs");
}

#[test]
fn oom_mid_pipeline_cleans_up() {
    // Chunked execution that OOMs when the accumulating hash table
    // outgrows the device mid-stream. Chunk backoff cannot help — the
    // table grows with the key count, not the chunk size — so after the
    // bounded retries the typed error surfaces.
    let (mut engine, dev) = tiny_engine(192 << 10, 64 << 10, 1 << 10);
    let mut pb = PlanBuilder::new(dev);
    let mut s = pb.scan("t", &["k"]);
    let ht = s.hash_build(&mut pb, "k", &[], 8).unwrap();
    let mut p = pb.scan("p", &["pk"]);
    p.semi_join(&mut pb, "pk", ht).unwrap();
    let pk = p.materialized(&mut pb, "pk").unwrap();
    let cnt = pb.agg_block(pk, AggFunc::Count, "cnt");
    pb.output("cnt", cnt);
    let graph = pb.build().unwrap();

    let mut inputs = QueryInputs::new();
    inputs.bind("k", (0..100_000i64).collect()); // table grows past 192 KiB
    inputs.bind("pk", vec![1i64; 10]);
    let err = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap_err();
    let oom = match &err {
        ExecError::Device(e) => {
            matches!(e, adamant::device::error::DeviceError::OutOfMemory { .. })
        }
        ExecError::KernelFailed { source, .. } => matches!(
            source,
            adamant::device::error::DeviceError::OutOfMemory { .. }
        ),
        _ => false,
    };
    assert!(oom, "expected an out-of-memory error, got {err}");
    let used = engine.executor().devices().get(dev).unwrap().pool().used();
    assert_eq!(used, 0, "leaked {used} bytes after mid-pipeline OOM");
}

#[test]
fn pinned_pool_exhaustion_is_typed() {
    // 4-phase staging needs pinned memory; a device without enough fails
    // with the pinned-specific error. Recovery is disabled so the first
    // failure surfaces directly.
    let mut engine = Adamant::builder()
        .chunk_rows(1 << 14)
        .device(DeviceProfile::cuda_rtx2080ti().with_memory(64 << 20, 1 << 10))
        .retry_policy(RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        })
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    let graph = sum_query(dev);
    let mut inputs = QueryInputs::new();
    inputs.bind("x", vec![1i64; 1 << 16]);
    let err = engine
        .run(&graph, &inputs, ExecutionModel::FourPhaseChunked)
        .unwrap_err();
    match err {
        ExecError::Device(adamant::device::error::DeviceError::OutOfPinnedMemory { .. }) => {}
        other => panic!("expected pinned exhaustion, got {other}"),
    }
    // Pageable chunked execution still works on the same engine.
    let (out, _) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(out.i64_column("sum")[0], 1 << 16);
}

#[test]
fn missing_kernel_without_fallback_is_reported_not_panicked() {
    // A device whose SDK has no registered kernels yields
    // `NoImplementation` at execution time; with no second device to fall
    // back to, the error surfaces on the first attempt.
    let mut engine = Adamant::builder()
        .tasks(TaskRegistry::new()) // empty registry
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    let graph = sum_query(dev);
    let mut inputs = QueryInputs::new();
    inputs.bind("x", vec![1i64; 10]);
    let err = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap_err();
    assert!(
        matches!(err, ExecError::NoImplementation { .. }),
        "got {err}"
    );
}

#[test]
fn stats_survive_repeated_runs() {
    // Clock resets between runs: totals must not accumulate across runs.
    let (mut engine, dev) = tiny_engine(1 << 30, 1 << 28, 512);
    let graph = sum_query(dev);
    let mut inputs = QueryInputs::new();
    inputs.bind("x", (0..10_000i64).collect());
    let (_, first) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    let (_, second) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    let ratio = second.total_ns / first.total_ns;
    assert!(
        (0.99..1.01).contains(&ratio),
        "run-to-run drift: {} vs {}",
        first.total_ns,
        second.total_ns
    );
}
