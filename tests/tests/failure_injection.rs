//! Failure injection: the engine must fail cleanly (typed errors, no
//! leaked device state) and stay usable afterwards.

use adamant::prelude::*;

fn tiny_engine(mem: u64, pinned: u64, chunk_rows: usize) -> (Adamant, DeviceId) {
    let engine = Adamant::builder()
        .chunk_rows(chunk_rows)
        .device(DeviceProfile::cuda_rtx2080ti().with_memory(mem, pinned))
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];
    (engine, dev)
}

fn sum_query(dev: DeviceId) -> PrimitiveGraph {
    let mut pb = PlanBuilder::new(dev);
    let mut s = pb.scan("t", &["x"]);
    let x = s.materialized(&mut pb, "x").unwrap();
    let sum = pb.agg_block(x, AggFunc::Sum, "sum");
    pb.output("sum", sum);
    pb.build().unwrap()
}

#[test]
fn engine_reusable_after_oom() {
    let (mut engine, dev) = tiny_engine(1 << 20, 1 << 18, 1 << 20);
    let graph = sum_query(dev);

    // Too big: OAAT needs the whole 8 MiB column on a 1 MiB device.
    let mut big = QueryInputs::new();
    big.bind("x", vec![1i64; 1 << 20]);
    let err = engine
        .run(&graph, &big, ExecutionModel::OperatorAtATime)
        .unwrap_err();
    assert!(matches!(err, ExecError::Device(_)), "typed OOM, got {err}");

    // The failed run must have cleaned up: a small query now succeeds on
    // the same engine, and its stats are untainted.
    let mut small = QueryInputs::new();
    small.bind("x", vec![1i64; 1000]);
    let (out, stats) = engine
        .run(&graph, &small, ExecutionModel::OperatorAtATime)
        .unwrap();
    assert_eq!(out.i64_column("sum")[0], 1000);
    assert!(stats.total_ns > 0.0);
    // All buffers of both runs released.
    let used = engine.executor().devices().get(dev).unwrap().pool().used();
    assert_eq!(used, 0, "leaked {used} bytes after runs");
}

#[test]
fn oom_mid_pipeline_cleans_up() {
    // Chunked execution that OOMs when the accumulating hash table
    // outgrows the device mid-stream.
    let (mut engine, dev) = tiny_engine(192 << 10, 64 << 10, 1 << 10);
    let mut pb = PlanBuilder::new(dev);
    let mut s = pb.scan("t", &["k"]);
    let ht = s.hash_build(&mut pb, "k", &[], 8).unwrap();
    let mut p = pb.scan("p", &["pk"]);
    p.semi_join(&mut pb, "pk", ht).unwrap();
    let pk = p.materialized(&mut pb, "pk").unwrap();
    let cnt = pb.agg_block(pk, AggFunc::Count, "cnt");
    pb.output("cnt", cnt);
    let graph = pb.build().unwrap();

    let mut inputs = QueryInputs::new();
    inputs.bind("k", (0..100_000i64).collect()); // table grows past 192 KiB
    inputs.bind("pk", vec![1i64; 10]);
    let err = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap_err();
    assert!(
        matches!(err, ExecError::Device(_)),
        "expected device error, got {err}"
    );
    let used = engine.executor().devices().get(dev).unwrap().pool().used();
    assert_eq!(used, 0, "leaked {used} bytes after mid-pipeline OOM");
}

#[test]
fn pinned_pool_exhaustion_is_typed() {
    // 4-phase staging needs pinned memory; a device without enough fails
    // with the pinned-specific error.
    let (mut engine, dev) = tiny_engine(64 << 20, 1 << 10, 1 << 14);
    let graph = sum_query(dev);
    let mut inputs = QueryInputs::new();
    inputs.bind("x", vec![1i64; 1 << 16]);
    let err = engine
        .run(&graph, &inputs, ExecutionModel::FourPhaseChunked)
        .unwrap_err();
    match err {
        ExecError::Device(adamant::device::error::DeviceError::OutOfPinnedMemory {
            ..
        }) => {}
        other => panic!("expected pinned exhaustion, got {other}"),
    }
    // Pageable chunked execution still works on the same engine.
    let (out, _) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap();
    assert_eq!(out.i64_column("sum")[0], 1 << 16);
}

#[test]
fn missing_kernel_is_reported_not_panicked() {
    // A device whose SDK has no registered kernels yields
    // `NoImplementation` at execution time.
    let engine = Adamant::builder()
        .tasks(TaskRegistry::new()) // empty registry
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .unwrap();
    let mut engine = engine;
    let dev = engine.device_ids()[0];
    let graph = sum_query(dev);
    let mut inputs = QueryInputs::new();
    inputs.bind("x", vec![1i64; 10]);
    let err = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .unwrap_err();
    assert!(
        matches!(err, ExecError::NoImplementation { .. }),
        "got {err}"
    );
}

#[test]
fn stats_survive_repeated_runs() {
    // Clock resets between runs: totals must not accumulate across runs.
    let (mut engine, dev) = tiny_engine(1 << 30, 1 << 28, 512);
    let graph = sum_query(dev);
    let mut inputs = QueryInputs::new();
    inputs.bind("x", (0..10_000i64).collect());
    let (_, first) = engine.run(&graph, &inputs, ExecutionModel::Chunked).unwrap();
    let (_, second) = engine.run(&graph, &inputs, ExecutionModel::Chunked).unwrap();
    let ratio = second.total_ns / first.total_ns;
    assert!(
        (0.99..1.01).contains(&ratio),
        "run-to-run drift: {} vs {}",
        first.total_ns,
        second.total_ns
    );
}
