//! Scheduler chaos soak: many concurrent queries from multiple tenants
//! over a faulty device, across several seeds. Every completed query must
//! match the fault-free reference exactly, failures must be clean typed
//! errors, device pools and the admission ledger must return to zero, and
//! same-seed runs must export byte-identical scheduler statistics.
//!
//! The CI `sched` job shards this suite by seed through the `SCHED_SEED`
//! environment variable (mirroring the `chaos` job's `CHAOS_SEED`).

use adamant::prelude::*;

const DEFAULT_SEEDS: [u64; 3] = [1, 7, 42];

fn seeds() -> Vec<u64> {
    match std::env::var("SCHED_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("SCHED_SEED must be an unsigned integer")],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

fn filter_map_sum(dev: DeviceId, threshold: i64, factor: i64) -> PrimitiveGraph {
    let mut pb = PlanBuilder::new(dev);
    let mut s = pb.scan("t", &["x"]);
    s.filter(&mut pb, Predicate::cmp("x", CmpOp::Ge, threshold))
        .unwrap();
    s.project(&mut pb, "y", Expr::col("x").mul(Expr::lit(factor)))
        .unwrap();
    let y = s.materialized(&mut pb, "y").unwrap();
    let sum = pb.agg_block(y, AggFunc::Sum, "sum");
    pb.output("sum", sum);
    pb.build().unwrap()
}

fn test_data(n: i64) -> Vec<i64> {
    (0..n).map(|i| (i * 37 + 11) % 500 - 250).collect()
}

fn expected_sum(data: &[i64], threshold: i64, factor: i64) -> i64 {
    data.iter()
        .filter(|&&v| v >= threshold)
        .map(|v| v * factor)
        .sum()
}

/// Query mix: `(tenant, threshold, factor)` triples cycled per seed.
const MIX: [(&str, i64, i64); 6] = [
    ("alpha", -100, 2),
    ("beta", 0, 3),
    ("alpha", 50, 5),
    ("gamma", -200, 1),
    ("beta", 120, 7),
    ("gamma", 10, 4),
];

/// One full scheduler session under a seeded fault plan. Returns each
/// query's outcome (`Ok(sum)`, or the error display) plus the scheduler
/// stats JSON.
fn soak_run(seed: u64, data: &[i64]) -> (Vec<Result<i64, String>>, String) {
    let mut engine = Adamant::builder()
        .chunk_rows(100)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .fault_plan(
            0,
            FaultPlan::none()
                .with_seed(seed)
                .exec_error_rate(0.05)
                .oom_rate(0.05),
        )
        .retry_policy(RetryPolicy {
            max_attempts: 6,
            ..Default::default()
        })
        .build()
        .unwrap();
    let dev0 = engine.device_ids()[0];
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.to_vec());

    let mut session = engine.session();
    session
        .tenant("alpha", 2.0)
        .tenant("beta", 1.0)
        .tenant("gamma", 1.0);
    let mut tickets = Vec::new();
    for (tenant, threshold, factor) in MIX {
        let spec = QuerySpec::new(
            filter_map_sum(dev0, threshold, factor),
            inputs.clone(),
            ExecutionModel::Chunked,
        );
        tickets.push(session.submit(tenant, spec));
    }
    let report = session.run_all();
    let json = report.stats().to_json();
    let outcomes = tickets
        .iter()
        .map(|&t| match report.outcome(t) {
            Some(QueryOutcome::Completed { output, .. }) => Ok(output.i64_column("sum")[0]),
            Some(QueryOutcome::Failed { error }) => {
                assert!(
                    matches!(
                        error,
                        ExecError::Device(_)
                            | ExecError::KernelFailed { .. }
                            | ExecError::DeadlineExceeded { .. }
                    ),
                    "seed {seed}: unexpected error class: {error}"
                );
                Err(error.to_string())
            }
            other => panic!("seed {seed}: query neither completed nor failed: {other:?}"),
        })
        .collect();
    drop(report);

    // Whatever happened: no buffer bytes and no reservation may survive.
    for &d in engine.device_ids() {
        let pool = engine.executor().devices().get(d).unwrap().pool();
        assert_eq!(pool.used(), 0, "seed {seed}: leaked bytes on {d}");
        assert_eq!(
            pool.pinned_used(),
            0,
            "seed {seed}: leaked pinned bytes on {d}"
        );
        assert_eq!(
            pool.admission_reserved(),
            0,
            "seed {seed}: leaked admission reservation on {d}"
        );
    }
    (outcomes, json)
}

#[test]
fn seeded_concurrent_chaos_is_survivable_and_deterministic() {
    let data = test_data(600);
    for seed in seeds() {
        let (first, first_json) = soak_run(seed, &data);
        for (i, (tenant, threshold, factor)) in MIX.iter().enumerate() {
            if let Ok(sum) = &first[i] {
                assert_eq!(
                    *sum,
                    expected_sum(&data, *threshold, *factor),
                    "seed {seed}: {tenant} query {i} diverged from reference"
                );
            }
        }
        // Same seed, fresh engine: identical outcomes, byte-identical
        // scheduler stats (the timeline is fully modeled — no wall clock).
        let (second, second_json) = soak_run(seed, &data);
        assert_eq!(first, second, "seed {seed}: outcomes flipped");
        assert_eq!(
            first_json, second_json,
            "seed {seed}: scheduler stats drifted between identical runs"
        );
    }
}

/// Fault-free control: the same mix completes fully, with every tenant
/// served and the scheduler's books balanced.
#[test]
fn fault_free_mix_completes_every_query() {
    let data = test_data(600);
    let (outcomes, json) = soak_run(0, &data);
    // Seed 0 still draws from the seeded schedule; re-run without faults
    // for the guaranteed-clean control.
    drop(outcomes);
    drop(json);

    let mut engine = Adamant::builder()
        .chunk_rows(100)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .build()
        .unwrap();
    let dev0 = engine.device_ids()[0];
    let mut inputs = QueryInputs::new();
    inputs.bind("x", data.to_vec());
    let mut session = engine.session();
    let mut tickets = Vec::new();
    for (tenant, threshold, factor) in MIX {
        tickets.push((
            threshold,
            factor,
            session.submit(
                tenant,
                QuerySpec::new(
                    filter_map_sum(dev0, threshold, factor),
                    inputs.clone(),
                    ExecutionModel::Chunked,
                ),
            ),
        ));
    }
    let report = session.run_all();
    for (threshold, factor, t) in tickets {
        let out = report.output(t).expect("fault-free query must complete");
        assert_eq!(
            out.i64_column("sum")[0],
            expected_sum(&data, threshold, factor)
        );
    }
    let stats = report.stats();
    assert_eq!(stats.admitted, MIX.len() as u64);
    assert_eq!(stats.completed, MIX.len() as u64);
    assert_eq!(stats.failed, 0);
    assert!(stats.makespan_ns > 0.0);
    assert_eq!(stats.tenants.len(), 3, "every tenant must be accounted");
}
