//! Device conformance suite: validates that ANY `Device` implementation
//! honors the contracts of the ten pluggable interfaces — the executable
//! form of the paper's claim that a new co-processor can be plugged in
//! without reworking the engine.
//!
//! Run against every built-in profile *and* a from-scratch custom device.

use adamant::device::sim::SimDevice;
use adamant::device::transform::TransformTable;
use adamant::prelude::*;

/// Exercises every interface of a freshly-initialized device.
fn conformance_suite(dev: &mut dyn Device, supports_jit: bool) {
    let name = dev.info().name.clone();
    let ctx = |m: &str| format!("{name}: {m}");

    // place / retrieve round trip.
    dev.place_data(BufferId(1), BufferData::I64(vec![5, 6, 7, 8]), 0)
        .unwrap_or_else(|e| panic!("{} ({e})", ctx("place_data")));
    let back = dev
        .retrieve_data(BufferId(1), None, 0)
        .unwrap_or_else(|e| panic!("{} ({e})", ctx("retrieve_data")));
    assert_eq!(
        back,
        BufferData::I64(vec![5, 6, 7, 8]),
        "{}",
        ctx("roundtrip")
    );

    // Partial retrieval with offset.
    let part = dev.retrieve_data(BufferId(1), Some(2), 1).unwrap();
    assert_eq!(part, BufferData::I64(vec![6, 7]), "{}", ctx("offset read"));

    // prepare_memory reserves; the reservation is visible in the pool.
    let used_before = dev.pool().used();
    dev.prepare_memory(BufferId(2), 1024).unwrap();
    assert!(
        dev.pool().used() >= used_before + 1024,
        "{}",
        ctx("reservation accounted")
    );

    // create_chunk produces a device-side copy.
    dev.create_chunk(BufferId(1), BufferId(3), 1, 2).unwrap();
    assert_eq!(
        dev.retrieve_data(BufferId(3), None, 0).unwrap(),
        BufferData::I64(vec![6, 7]),
        "{}",
        ctx("create_chunk")
    );

    // Pinned memory is tracked separately.
    dev.add_pinned_memory(BufferId(4), 2048).unwrap();
    assert!(dev.pool().pinned_used() >= 2048, "{}", ctx("pinned pool"));

    // transform_memory returns a path and keeps data intact.
    let _ = dev
        .transform_memory(BufferId(1), SdkRepr::native_of(dev.info().sdk))
        .unwrap();
    assert_eq!(
        dev.retrieve_data(BufferId(1), None, 0).unwrap(),
        BufferData::I64(vec![5, 6, 7, 8]),
        "{}",
        ctx("transform preserves data")
    );

    // Kernel binding + execution.
    let f: adamant::device::kernel::KernelFn = std::sync::Arc::new(|pool, bufs, params| {
        let c = params[0];
        let input = pool.get(bufs[0])?.data.as_i64().unwrap().clone();
        let mut out = pool.take(bufs[1])?;
        out.data = BufferData::I64(input.iter().map(|x| x * c).collect());
        pool.restore(bufs[1], out)?;
        Ok(KernelStats::new(input.len() as u64, CostClass::MapLike))
    });
    dev.prepare_kernel("conf_mul", KernelSource::Builtin(f.clone()))
        .unwrap();
    let stats = dev
        .execute(&ExecuteSpec::new(
            "conf_mul",
            vec![BufferId(1), BufferId(2)],
            vec![10],
        ))
        .unwrap();
    assert_eq!(stats.elements, 4, "{}", ctx("kernel stats"));
    assert_eq!(
        dev.retrieve_data(BufferId(2), None, 0).unwrap(),
        BufferData::I64(vec![50, 60, 70, 80]),
        "{}",
        ctx("kernel result")
    );

    // Runtime compilation is optional — but the answer must be consistent.
    let jit = dev.prepare_kernel(
        "conf_jit",
        KernelSource::Source {
            source: "kernel void conf_jit() {}".into(),
            entry: f,
        },
    );
    assert_eq!(jit.is_ok(), supports_jit, "{}", ctx("JIT support flag"));

    // init_structure allocates without host transfer.
    let h2d_before = dev.clock().bytes_h2d();
    dev.init_structure(BufferId(5), BufferData::I64(vec![0; 16]))
        .unwrap();
    assert_eq!(
        dev.clock().bytes_h2d(),
        h2d_before,
        "{}",
        ctx("init no H2D")
    );

    // delete_memory releases bytes; unknown buffers error.
    dev.delete_memory(BufferId(3)).unwrap();
    assert!(
        dev.delete_memory(BufferId(3)).is_err(),
        "{}",
        ctx("double free")
    );

    // Costs were recorded throughout.
    assert!(dev.clock().total_ns() > 0.0, "{}", ctx("clock records"));

    // reset leaves a clean, reusable device.
    dev.reset();
    assert_eq!(dev.pool().used(), 0, "{}", ctx("reset pool"));
    assert_eq!(dev.clock().total_ns(), 0.0, "{}", ctx("reset clock"));
    dev.place_data(BufferId(9), BufferData::I64(vec![1]), 0)
        .unwrap_or_else(|e| panic!("{} ({e})", ctx("usable after reset")));
}

#[test]
fn all_builtin_profiles_conform() {
    for profile in DeviceProfile::setup1()
        .into_iter()
        .chain(DeviceProfile::setup2())
        .chain([DeviceProfile::host()])
    {
        let jit = profile.supports_compilation;
        let mut dev = profile.build(DeviceId(0));
        conformance_suite(&mut dev, jit);
    }
}

#[test]
fn custom_device_conforms() {
    // A from-scratch accelerator with its own SDK tag: the plug-in path.
    let info = DeviceInfo {
        id: DeviceId(0),
        name: "conformance-npu".into(),
        kind: DeviceKind::Accelerator,
        sdk: SdkKind::Custom(9),
        memory_capacity: 1 << 24,
        pinned_capacity: 1 << 22,
    };
    let mut dev = SimDevice::new(
        info,
        CostModel {
            discrete: true,
            ..CostModel::default()
        },
        TransformTable::new(),
        true,
    );
    dev.initialize().unwrap();
    conformance_suite(&mut dev, true);
}

#[test]
fn custom_device_runs_full_query_suite() {
    // The stronger claim: a custom device + SDK executes the TPC-H suite
    // under every model with exact results.
    let sdk = SdkKind::Custom(7);
    let info = DeviceInfo {
        id: DeviceId(0),
        name: "query-npu".into(),
        kind: DeviceKind::Accelerator,
        sdk,
        memory_capacity: 4 << 30,
        pinned_capacity: 1 << 30,
    };
    let mut npu = SimDevice::new(
        info,
        CostModel {
            discrete: true,
            mem_bandwidth_gibs: 700.0,
            ..CostModel::default()
        },
        TransformTable::new(),
        false,
    );
    npu.initialize().unwrap();

    let mut tasks = TaskRegistry::new();
    tasks.register_defaults_for(sdk);
    let mut engine = Adamant::builder()
        .tasks(tasks)
        .chunk_rows(900)
        .custom_device(Box::new(npu))
        .build()
        .unwrap();
    let dev = engine.device_ids()[0];

    let catalog = TpchGenerator::new(0.001, 13).generate();
    for q in TpchQuery::ALL {
        for model in ExecutionModel::ALL {
            let graph = q.plan(dev, &catalog).unwrap();
            let inputs = q.bind(&catalog).unwrap();
            let (out, _) = engine
                .run(&graph, &inputs, model)
                .unwrap_or_else(|e| panic!("{q} under {model}: {e}"));
            match q {
                TpchQuery::Q6 => assert_eq!(
                    adamant::tpch::queries::q6::decode(&out),
                    adamant::tpch::reference::q6(&catalog).unwrap()
                ),
                TpchQuery::Q1 => assert_eq!(
                    adamant::tpch::queries::q1::decode(&catalog, &out).unwrap(),
                    adamant::tpch::reference::q1(&catalog).unwrap()
                ),
                TpchQuery::Q3 => assert_eq!(
                    adamant::tpch::queries::q3::decode(&out),
                    adamant::tpch::reference::q3(&catalog).unwrap()
                ),
                TpchQuery::Q4 => assert_eq!(
                    adamant::tpch::queries::q4::decode(&catalog, &out).unwrap(),
                    adamant::tpch::reference::q4(&catalog).unwrap()
                ),
                TpchQuery::Q10 => assert_eq!(
                    adamant::tpch::queries::q10::decode(&out),
                    adamant::tpch::reference::q10(&catalog).unwrap()
                ),
                TpchQuery::Q12 => assert_eq!(
                    adamant::tpch::queries::q12::decode(&catalog, &out).unwrap(),
                    adamant::tpch::reference::q12(&catalog).unwrap()
                ),
                TpchQuery::Q14 => assert_eq!(
                    adamant::tpch::queries::q14::decode(&out),
                    adamant::tpch::reference::q14(&catalog).unwrap()
                ),
            }
        }
    }
}
