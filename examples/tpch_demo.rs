//! TPC-H end to end: generate data, run Q1/Q3/Q4/Q6 on the simulated GPU,
//! validate every result against the host reference implementations.
//!
//! Run: `cargo run --release -p adamant-examples --example tpch_demo`

use adamant::prelude::*;
use adamant::storage::datatype::format_date;
use adamant::tpch::{queries, reference};

fn main() {
    let sf = 0.01;
    println!("generating TPC-H data at SF {sf}...");
    let catalog = TpchGenerator::new(sf, 7).generate();
    for t in catalog.table_names() {
        let table = catalog.table(t).unwrap();
        println!(
            "  {:<9} {:>8} rows  {:>7.2} MiB",
            t,
            table.row_count(),
            table.byte_len() as f64 / (1 << 20) as f64
        );
    }

    let mut engine = Adamant::builder()
        .chunk_rows(16 << 10)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .expect("engine");
    let gpu = engine.device_ids()[0];

    for q in TpchQuery::ALL {
        let graph = q.plan(gpu, &catalog).expect("plan");
        let inputs = q.bind(&catalog).expect("bind");
        let (out, stats) = engine
            .run(&graph, &inputs, ExecutionModel::FourPhasePipelined)
            .expect("run");
        println!(
            "\n== {q} ==  {:.3} ms modeled, {} pipelines, {} chunks",
            stats.total_ms(),
            stats.pipelines,
            stats.chunks_processed
        );
        match q {
            TpchQuery::Q1 => {
                let rows = queries::q1::decode(&catalog, &out).unwrap();
                assert_eq!(rows, reference::q1(&catalog).unwrap(), "Q1 mismatch");
                for r in &rows {
                    println!(
                        "  {} {} | qty={} base={:.2} disc_price={:.2} count={}",
                        r.returnflag,
                        r.linestatus,
                        r.sum_qty,
                        r.sum_base_price as f64 / 100.0,
                        r.sum_disc_price as f64 / 10_000.0,
                        r.count
                    );
                }
            }
            TpchQuery::Q3 => {
                let rows = queries::q3::decode(&out);
                assert_eq!(rows, reference::q3(&catalog).unwrap(), "Q3 mismatch");
                for r in rows.iter().take(5) {
                    println!(
                        "  order {} | revenue={:.2} date={} prio={}",
                        r.orderkey,
                        r.revenue as f64 / 10_000.0,
                        format_date(r.orderdate as i32),
                        r.shippriority
                    );
                }
            }
            TpchQuery::Q4 => {
                let rows = queries::q4::decode(&catalog, &out).unwrap();
                assert_eq!(rows, reference::q4(&catalog).unwrap(), "Q4 mismatch");
                for r in &rows {
                    println!("  {:<16} {}", r.priority, r.count);
                }
            }
            TpchQuery::Q6 => {
                let rev = queries::q6::decode(&out);
                assert_eq!(rev, reference::q6(&catalog).unwrap(), "Q6 mismatch");
                println!("  revenue = {:.2}", rev as f64 / 10_000.0);
            }
            TpchQuery::Q10 => {
                let rows = queries::q10::decode(&out);
                assert_eq!(rows, reference::q10(&catalog).unwrap(), "Q10 mismatch");
                for r in rows.iter().take(5) {
                    println!(
                        "  customer {} | revenue={:.2}",
                        r.custkey,
                        r.revenue as f64 / 100.0
                    );
                }
            }
            TpchQuery::Q12 => {
                let rows = queries::q12::decode(&catalog, &out).unwrap();
                assert_eq!(rows, reference::q12(&catalog).unwrap(), "Q12 mismatch");
                for r in &rows {
                    println!(
                        "  {:<6} high={} low={}",
                        r.shipmode, r.high_line_count, r.low_line_count
                    );
                }
            }
            TpchQuery::Q14 => {
                let (promo, total) = queries::q14::decode(&out);
                assert_eq!(
                    (promo, total),
                    reference::q14(&catalog).unwrap(),
                    "Q14 mismatch"
                );
                println!(
                    "  promo_revenue = {:.2}%",
                    queries::q14::promo_percent(promo, total)
                );
            }
        }
    }
    println!("\nall results match the reference implementations exactly.");
}
