//! Scheduler-level preemption A/B: a tight-deadline "realtime" query is
//! submitted behind a long-running "bulk" tenant. Under pure weighted fair
//! queuing its chunks interleave 1:1 with the bulk query and it finishes
//! past its deadline (reported, never silent). With preemption enabled the
//! bulk query is suspended — its remaining slices parked — until the
//! urgent slices drain, the deadline is met, and the bulk query resumes
//! and completes reference-exact.
//!
//! Run: `cargo run --release -p adamant-examples --example preemption`

use adamant::prelude::*;

fn revenue_query(dev: DeviceId, threshold: i64) -> PrimitiveGraph {
    let mut pb = PlanBuilder::new(dev);
    let mut t = pb.scan("sales", &["amount"]);
    t.filter(&mut pb, Predicate::cmp("amount", CmpOp::Ge, threshold))
        .expect("filter");
    let v = t.materialized(&mut pb, "amount").expect("mat");
    let s = pb.agg_block(v, AggFunc::Sum, "revenue");
    pb.output("revenue", s);
    pb.build().expect("graph")
}

/// Runs the bulk + realtime contention scenario; returns the report and
/// the two tickets.
fn run(preempt: Option<PreemptPolicy>, deadline_ns: f64) -> (SchedReport, QueryTicket) {
    let mut engine = Adamant::builder()
        .chunk_rows(512)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .expect("engine");
    if let Some(policy) = preempt {
        engine.set_preempt_policy(policy);
    }
    let gpu = engine.device_ids()[0];

    let mut bulk_inputs = QueryInputs::new();
    bulk_inputs.bind(
        "amount",
        (0..200_000i64).map(|i| (i * 31 + 7) % 1_000).collect(),
    );
    let mut rt_inputs = QueryInputs::new();
    rt_inputs.bind(
        "amount",
        (0..20_000i64).map(|i| (i * 13 + 3) % 1_000).collect(),
    );

    let mut session = engine.session();
    session.tenant("bulk", 1.0).tenant("realtime", 1.0);
    session.submit(
        "bulk",
        QuerySpec::new(
            revenue_query(gpu, 100),
            bulk_inputs,
            ExecutionModel::Chunked,
        ),
    );
    let rt = session.submit(
        "realtime",
        QuerySpec::new(revenue_query(gpu, 500), rt_inputs, ExecutionModel::Chunked)
            .with_deadline_ns(deadline_ns),
    );
    (session.run_all(), rt)
}

fn main() {
    // Measure the realtime query's solo service demand to pick a deadline
    // that is generous solo but unmeetable under 1:1 interleaving.
    let mut probe = Adamant::builder()
        .chunk_rows(512)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .expect("engine");
    let gpu = probe.device_ids()[0];
    let mut rt_inputs = QueryInputs::new();
    rt_inputs.bind(
        "amount",
        (0..20_000i64).map(|i| (i * 13 + 3) % 1_000).collect(),
    );
    let (_, stats) = probe
        .run(
            &revenue_query(gpu, 500),
            &rt_inputs,
            ExecutionModel::Chunked,
        )
        .expect("probe run");
    let solo: f64 = stats.slice_ns.iter().sum();
    let deadline = 1.5 * solo;
    println!(
        "realtime query needs {:.3} ms of device time; deadline set to {:.3} ms\n",
        solo / 1e6,
        deadline / 1e6
    );

    for (label, policy) in [
        ("preemption OFF (pure WFQ)", None),
        (
            "preemption ON  (slack = deadline)",
            Some(PreemptPolicy::with_slack_ns(deadline)),
        ),
    ] {
        let (report, rt) = run(policy, deadline);
        let stats = report.stats();
        match report.outcome(rt) {
            Some(QueryOutcome::Completed {
                finish_ns,
                missed_deadline,
                ..
            }) => println!(
                "{label}: finished at {:.3} ms → {} | preemptions={} resumed={} \
                 deadline_misses={}",
                finish_ns / 1e6,
                if *missed_deadline {
                    "MISSED its deadline (reported, not silent)"
                } else {
                    "met its deadline"
                },
                stats.preemptions,
                stats.resumed,
                stats.deadline_misses
            ),
            other => println!("{label}: {other:?}"),
        }
        println!("  stats: {}\n", stats.to_json());
    }
}
