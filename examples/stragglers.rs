//! Straggler tolerance: watchdogs, hedged chunks, and transfer checksums.
//!
//! One device of two is a chronic straggler — every operation runs 8× slow
//! and one kernel launch stalls outright — and it silently corrupts one
//! transfer. The executor's chunk watchdog notices the overrun, hedges the
//! chunk onto the healthy device, and the hedge wins the race; the hub's
//! end-to-end checksum catches the corrupted transfer and retransmits it.
//! The same query under the same faults *misses its deadline* when hedging
//! is disabled.
//!
//! Run: `cargo run --release -p adamant-examples --example stragglers`

use adamant::prelude::*;

fn build_query(dev: DeviceId) -> PrimitiveGraph {
    let mut pb = PlanBuilder::new(dev);
    let mut t = pb.scan("events", &["value"]);
    t.filter(&mut pb, Predicate::cmp("value", CmpOp::Ge, 100))
        .expect("filter");
    let v = t.materialized(&mut pb, "value").expect("mat");
    let s = pb.agg_block(v, AggFunc::Sum, "sum_value");
    pb.output("sum_value", s);
    pb.build().expect("graph")
}

fn run(hedging: bool, deadline_ns: f64) -> Result<ExecutionStats, ExecError> {
    // The straggler: 8× slowdown everywhere, a hard stall on its 4th kernel
    // launch, and a silently corrupted payload on its 2nd upload.
    let straggler = FaultPlan::none()
        .slowdown(8.0)
        .stall_on_exec(4)
        .corrupt_on_place(2);
    let mut builder = Adamant::builder()
        .chunk_rows(4 << 10)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .fault_plan(0, straggler)
        .deadline_ns(deadline_ns);
    if !hedging {
        builder = builder.no_hedging();
    }
    let mut engine = builder.build().expect("engine");
    let dev = engine.device_ids()[0];
    let graph = build_query(dev);
    let n = 64 << 10;
    let mut inputs = QueryInputs::new();
    inputs.bind("value", (0..n).map(|i| i % 1_000).collect());
    engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .map(|(out, stats)| {
            println!(
                "  sum={} in {:.3} ms modeled",
                out.i64_column("sum_value")[0],
                stats.total_ms()
            );
            stats
        })
}

fn main() {
    // Generous for a healthy run, hopeless if any chunk stalls un-hedged.
    let deadline_ns = 1e9;

    println!("with hedging (watchdog at 3x the fault-free chunk budget):");
    match run(true, deadline_ns) {
        Ok(stats) => println!(
            "  deadline met: watchdog_fires={} hedged_launches={} hedge_wins={} \
             corruption_retransmits={}",
            stats.watchdog_fires,
            stats.hedged_launches,
            stats.hedge_wins,
            stats.corruption_retransmits
        ),
        Err(e) => println!("  unexpected failure: {e}"),
    }

    println!("\nwithout hedging (same faults, same deadline):");
    match run(false, deadline_ns) {
        Ok(stats) => println!("  unexpectedly met deadline in {:.3} ms", stats.total_ms()),
        Err(e) => println!("  {e}"),
    }

    println!(
        "\nthe watchdog duplicates an overrunning chunk onto the healthy\n\
         device and takes whichever copy finishes first, so one stalled\n\
         kernel costs a hedge instead of the whole deadline; checksums turn\n\
         silent transfer corruption into a bounded retransmit."
    );
}
