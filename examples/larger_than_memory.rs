//! Larger-than-memory processing: the scalability argument of paper §IV.
//!
//! The same query is run against a device whose memory cannot hold its
//! input. Operator-at-a-time fails with a real out-of-memory error;
//! the chunked execution models stream the input and succeed — with the
//! 4-phase model fastest.
//!
//! Run: `cargo run --release -p adamant-examples --example larger_than_memory`

use adamant::prelude::*;

fn build_query(dev: DeviceId) -> PrimitiveGraph {
    let mut pb = PlanBuilder::new(dev);
    let mut t = pb.scan("events", &["ts", "value"]);
    t.filter(&mut pb, Predicate::between("ts", 1_000, 100_000))
        .expect("filter");
    let v = t.materialized(&mut pb, "value").expect("mat");
    let s = pb.agg_block(v, AggFunc::Sum, "sum_value");
    pb.output("sum_value", s);
    pb.build().expect("graph")
}

fn main() {
    // A GPU with only 4 MiB of memory...
    let tiny_gpu = DeviceProfile::cuda_rtx2080ti().with_memory(4 << 20, 4 << 20);
    // ...facing 2 x 8 MiB input columns.
    let n = 1 << 20;
    let mut inputs = QueryInputs::new();
    inputs.bind("ts", (0..n).map(|i| i % 200_000).collect());
    inputs.bind("value", (0..n).map(|i| i % 1_000).collect());
    println!(
        "device memory: {} MiB; query input: {} MiB",
        4,
        2 * n * 8 / (1 << 20)
    );

    for model in ExecutionModel::ALL {
        let mut engine = Adamant::builder()
            .chunk_rows(64 << 10) // 512 KiB chunks
            .device(tiny_gpu.clone())
            .build()
            .expect("engine");
        let dev = engine.device_ids()[0];
        let graph = build_query(dev);
        match engine.run(&graph, &inputs, model) {
            Ok((out, stats)) => println!(
                "{:<18} OK   sum={} in {:>8.3} ms modeled ({} chunks, peak {:.2} MiB)",
                model.name(),
                out.i64_column("sum_value")[0],
                stats.total_ms(),
                stats.chunks_processed,
                stats.peak_device_bytes.values().max().copied().unwrap_or(0) as f64
                    / (1 << 20) as f64,
            ),
            Err(e) => println!("{:<18} FAIL {e}", model.name()),
        }
    }
    println!(
        "\noperator-at-a-time needs the whole input resident and dies;\n\
         the chunked models bound device memory by the chunk size (paper §IV)."
    );
}
