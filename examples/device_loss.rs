//! Hot-unplug and hot-add: surviving permanent device loss mid-query.
//!
//! A three-device engine runs TPC-H Q6 while its primary GPU dies for good
//! partway through (a hard unplug: every later call would return `Gone`).
//! The engine writes off the corpse's buffers without touching it,
//! re-stages the lost inputs from host copies, finishes the query
//! reference-exact on the survivors, and unplugs the dead device from the
//! registry. A replacement is then hot-added between runs — it enters the
//! health registry half-open and the very next run routes work onto it.
//!
//! Run: `cargo run --release -p adamant-examples --example device_loss`

use adamant::prelude::*;

fn main() {
    let catalog = TpchGenerator::new(0.01, 7).generate();
    let reference = adamant::tpch::reference::q6(&catalog).expect("reference");

    // Device 0 dies permanently on its 5th kernel launch.
    let mut engine = Adamant::builder()
        .chunk_rows(2 << 10)
        .device(DeviceProfile::cuda_rtx2080ti())
        .device(DeviceProfile::opencl_cpu_i7())
        .device(DeviceProfile::openmp_cpu_i7())
        .fault_plan(0, FaultPlan::none().die_on_exec(5))
        .build()
        .expect("engine");
    let dev0 = engine.device_ids()[0];
    let graph = TpchQuery::Q6.plan(dev0, &catalog).expect("plan");
    let inputs = TpchQuery::Q6.bind(&catalog).expect("bind");

    println!("== run 1: the primary GPU dies mid-query ==");
    let (out, stats) = engine
        .run(&graph, &inputs, ExecutionModel::Chunked)
        .expect("survivors finish the query");
    assert_eq!(adamant::tpch::queries::q6::decode(&out), reference);
    println!(
        "  q6 revenue exact on survivors: deaths={}, buffers written off={}, \
         bytes re-staged={}",
        stats.device_deaths, stats.buffers_written_off, stats.restaged_bytes
    );
    println!(
        "  devices still plugged: {:?}",
        engine.executor().devices().ids()
    );

    println!("== hot-add a replacement GPU ==");
    let new_dev = engine
        .attach_profile(&DeviceProfile::cuda_rtx2080ti())
        .expect("attach");
    println!(
        "  {new_dev} attached, half-open in the health registry: {}",
        engine.health().is_half_open(new_dev)
    );

    println!("== run 2: work routes onto the replacement ==");
    let graph2 = TpchQuery::Q6.plan(new_dev, &catalog).expect("plan");
    let (out2, stats2) = engine
        .run(&graph2, &inputs, ExecutionModel::Chunked)
        .expect("replacement serves the query");
    assert_eq!(adamant::tpch::queries::q6::decode(&out2), reference);
    let new_ns = engine
        .executor()
        .devices()
        .get(new_dev)
        .expect("plugged")
        .clock()
        .total_ns();
    println!(
        "  q6 revenue exact again: hot_adds={}, chunks={}, \
         replacement device time={:.3} ms",
        stats2.hot_adds,
        stats2.chunks_processed,
        new_ns / 1e6
    );
}
