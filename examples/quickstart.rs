//! Quickstart: plug a device, build a plan, execute it, read the stats.
//!
//! Run: `cargo run --release -p adamant-examples --example quickstart`

use adamant::prelude::*;

fn main() {
    // 1. Build an engine and plug a simulated CUDA GPU. Any type
    //    implementing `Device` can be plugged the same way — that is the
    //    paper's whole point.
    let mut engine = Adamant::builder()
        .chunk_rows(4096)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .expect("engine");
    let gpu = engine.device_ids()[0];

    // 2. Express a query with the plan layer:
    //    SELECT sum(price * (100 - discount)) FROM sales
    //    WHERE qty BETWEEN 5 AND 20
    let mut pb = PlanBuilder::new(gpu);
    let mut sales = pb.scan("sales", &["qty", "price", "discount"]);
    sales
        .filter(&mut pb, Predicate::between("qty", 5, 20))
        .expect("filter");
    sales
        .project(
            &mut pb,
            "rev",
            Expr::col("price").mul(Expr::lit(100).sub(Expr::col("discount"))),
        )
        .expect("project");
    let rev = sales.materialized(&mut pb, "rev").expect("materialize");
    let total = pb.agg_block(rev, AggFunc::Sum, "total_revenue");
    pb.output("total_revenue", total);
    let graph = pb.build().expect("valid graph");

    // 3. Bind host columns (100k synthetic rows).
    let n = 100_000;
    let mut inputs = QueryInputs::new();
    inputs.bind("qty", (0..n).map(|i| i % 50).collect());
    inputs.bind("price", (0..n).map(|i| 1_000 + i % 9_000).collect());
    inputs.bind("discount", (0..n).map(|i| i % 11).collect());

    // 4. Execute under two models and compare.
    for model in [ExecutionModel::Chunked, ExecutionModel::FourPhasePipelined] {
        let (out, stats) = engine.run(&graph, &inputs, model).expect("run");
        let acc = out.i64_column("total_revenue");
        println!(
            "{:<18} -> revenue={} (rows folded: {}), modeled {:.3} ms \
             ({} chunks, {:.1} MiB H2D)",
            model.name(),
            acc[0],
            acc[1],
            stats.total_ms(),
            stats.chunks_processed,
            stats.bytes_h2d as f64 / (1 << 20) as f64,
        );
    }
}
