//! Plugging a brand-new co-processor into ADAMANT — the paper's core claim
//! ("couple a new co-processor or API … without re-working the complete
//! query engine").
//!
//! This example integrates an imaginary "NPU" with its own vendor SDK:
//! a custom `Device` implementation (here a `SimDevice` configured with the
//! NPU's own cost profile and a custom SDK tag, exactly how a real driver
//! author would wrap their SDK calls) plus kernel registrations for the
//! new SDK. *No executor, runtime or planner code changes.*
//!
//! Run: `cargo run --release -p adamant-examples --example plug_in_device`

use adamant::device::sim::SimDevice;
use adamant::device::transform::TransformTable;
use adamant::prelude::*;

/// The NPU's SDK tag — unknown to every built-in component.
const NPU_SDK: SdkKind = SdkKind::Custom(42);

/// Builds the NPU driver: implements the ten device interfaces via
/// `SimDevice` with NPU-specific characteristics (huge compute bandwidth,
/// narrow transfer bus, no runtime kernel compilation).
fn npu_device() -> SimDevice {
    let info = DeviceInfo {
        id: DeviceId(0), // reassigned by the registry on plug
        name: "npu0 (imaginary-vendor-sdk)".into(),
        kind: DeviceKind::Accelerator,
        sdk: NPU_SDK,
        memory_capacity: 2 << 30,
        pinned_capacity: 512 << 20,
    };
    let cost = CostModel {
        h2d_pageable_gibs: 3.0,
        h2d_pinned_gibs: 8.0,
        d2h_pageable_gibs: 3.0,
        d2h_pinned_gibs: 8.0,
        mem_bandwidth_gibs: 900.0,
        launch_overhead_ns: 4_000.0,
        discrete: true,
        ..CostModel::default()
    };
    let mut dev = SimDevice::new(info, cost, TransformTable::new(), false);
    dev.initialize().expect("init");
    dev
}

fn main() {
    // 1. Register kernels for the new SDK. The reference implementations
    //    already adhere to the primitive I/O signatures, so the vendor can
    //    reuse them wholesale — or register specialized variants.
    let mut tasks = TaskRegistry::new();
    tasks.register_defaults_for(NPU_SDK);
    println!(
        "registered {} kernel containers for the NPU SDK",
        tasks.len()
    );

    // 2. Plug the device. Nothing else in the engine changes.
    let mut engine = Adamant::builder()
        .tasks(tasks)
        .chunk_rows(8192)
        .custom_device(Box::new(npu_device()))
        .build()
        .expect("engine");
    let npu = engine.device_ids()[0];

    // 3. Run a join on the new co-processor under every execution model.
    let mut pb = PlanBuilder::new(npu);
    let mut dim = pb.scan("dim", &["d_key", "d_weight"]);
    let ht = dim
        .hash_build(&mut pb, "d_key", &["d_weight"], 1000)
        .expect("build");
    let mut fact = pb.scan("fact", &["f_key", "f_val"]);
    fact.filter(&mut pb, Predicate::cmp("f_val", CmpOp::Gt, 10))
        .expect("filter");
    fact.hash_probe(&mut pb, "f_key", ht, &["d_weight"])
        .expect("probe");
    fact.project(
        &mut pb,
        "weighted",
        Expr::col("f_val").mul(Expr::col("d_weight")),
    )
    .expect("project");
    let weighted = fact.materialized(&mut pb, "weighted").expect("mat");
    let total = pb.agg_block(weighted, AggFunc::Sum, "total");
    pb.output("total", total);
    let graph = pb.build().expect("graph");

    let mut inputs = QueryInputs::new();
    inputs.bind("d_key", (0..1000).collect());
    inputs.bind("d_weight", (0..1000).map(|k| k % 7 + 1).collect());
    inputs.bind("f_key", (0..50_000).map(|i| i % 1500).collect());
    inputs.bind("f_val", (0..50_000).map(|i| i % 100).collect());

    for model in ExecutionModel::ALL {
        let (out, stats) = engine.run(&graph, &inputs, model).expect("run");
        println!(
            "{:<18} on NPU -> total={}  ({:.3} ms modeled)",
            model.name(),
            out.i64_column("total")[0],
            stats.total_ms()
        );
    }
    println!("\nA new co-processor + SDK ran the full model suite — zero engine changes.");
}
