//! Two tenants share one simulated GPU through the multi-query scheduler:
//! admission control keeps their reservations from colliding, and weighted
//! fair queuing splits the device time 2:1 on the simulated timeline while
//! every query still returns exact results.
//!
//! Run: `cargo run --release -p adamant-examples --example concurrent_queries`

use adamant::prelude::*;

fn revenue_query(dev: DeviceId, threshold: i64) -> PrimitiveGraph {
    let mut pb = PlanBuilder::new(dev);
    let mut t = pb.scan("sales", &["amount"]);
    t.filter(&mut pb, Predicate::cmp("amount", CmpOp::Ge, threshold))
        .expect("filter");
    let v = t.materialized(&mut pb, "amount").expect("mat");
    let s = pb.agg_block(v, AggFunc::Sum, "revenue");
    pb.output("revenue", s);
    pb.build().expect("graph")
}

fn main() {
    // One GPU with 1 MiB of memory serves both tenants.
    let mut engine = Adamant::builder()
        .chunk_rows(512)
        .device(DeviceProfile::cuda_rtx2080ti().with_memory(1 << 20, 256 << 10))
        .build()
        .expect("engine");
    let gpu = engine.device_ids()[0];

    let n = 20_000i64;
    let mut inputs = QueryInputs::new();
    inputs.bind("amount", (0..n).map(|i| (i * 31 + 7) % 1_000).collect());

    // "analytics" pays for 2x the fair share of "reporting".
    let mut session = engine.session();
    session.tenant("analytics", 2.0).tenant("reporting", 1.0);

    let mut tickets = Vec::new();
    for round in 0..4 {
        for tenant in ["analytics", "reporting"] {
            let spec = QuerySpec::new(
                revenue_query(gpu, 100 + round * 50),
                inputs.clone(),
                ExecutionModel::Chunked,
            )
            // 384 KiB reservations: at most two queries fit at once, so
            // admissions genuinely queue.
            .with_footprint(384 << 10);
            tickets.push((tenant, round, session.submit(tenant, spec)));
        }
    }
    let report = session.run_all();

    println!("query outcomes (all results exact):");
    for (tenant, round, ticket) in &tickets {
        match report.outcome(*ticket) {
            Some(QueryOutcome::Completed {
                output,
                wait_ns,
                finish_ns,
                ..
            }) => println!(
                "  {tenant:<10} round {round}: revenue={:<8} waited {:>10.0} ns, \
                 finished at {:>12.0} ns",
                output.i64_column("revenue")[0],
                wait_ns,
                finish_ns
            ),
            other => println!("  {tenant:<10} round {round}: {other:?}"),
        }
    }

    let stats = report.stats();
    println!("\nper-tenant device time under contention:");
    for (name, t) in &stats.tenants {
        println!(
            "  {name:<10} weight {:.1}: ran {:>12.0} ns total, {:>12.0} ns contended, \
             waited {:>12.0} ns",
            t.weight, t.run_ns, t.contended_run_ns, t.wait_ns
        );
    }
    let heavy = &stats.tenants["analytics"];
    let light = &stats.tenants["reporting"];
    println!(
        "\ncontended-time ratio analytics:reporting = {:.2} (weights say 2.0)",
        heavy.contended_run_ns / light.contended_run_ns
    );
    println!(
        "makespan {:.3} ms across {} slices; {} admissions held at the gate",
        stats.makespan_ns / 1e6,
        stats.slices,
        stats.held
    );
    println!("\nscheduler stats JSON:\n{}", stats.to_json());
}
