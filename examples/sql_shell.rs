//! SQL shell: the whole front door in one loop — type SQL, get rows.
//!
//! Serves queries against a generated TPC-H catalog through a [`Session`]:
//! parse → bind → rewrite → lower to a primitive graph, footprint-estimated
//! admission through the multi-query scheduler, typed decode, and per-query
//! executor statistics. `\d` lists the schema, `\q` quits.
//!
//! Run: `cargo run --release -p adamant-examples --example sql_shell`
//!
//! Try:
//!   SELECT SUM(l_extendedprice * (100 - l_discount)) AS revenue
//!   FROM lineitem WHERE l_quantity < 2400
//!   AND l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'

use adamant::prelude::*;
use adamant::tpch::{self, TpchGenerator};
use std::io::{BufRead, Write};

fn main() {
    let catalog = TpchGenerator::new(0.01, 42).generate();
    let mut engine = Adamant::builder()
        .chunk_rows(4096)
        .device(DeviceProfile::cuda_rtx2080ti())
        .build()
        .expect("engine");

    println!("ADAMANT SQL shell — TPC-H sf 0.01, one simulated CUDA device.");
    println!("Commands: \\d (schema), \\tpch (example queries), \\q (quit).");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("sql> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let text = line.trim();
        match text {
            "" => continue,
            "\\q" | "exit" | "quit" => break,
            "\\d" => {
                for t in catalog.describe() {
                    println!("{} ({} rows, {} bytes)", t.name, t.rows, t.bytes);
                    for c in &t.columns {
                        match c.dict_size {
                            Some(n) => {
                                println!("  {:<16} {:?} (dict, {} entries)", c.name, c.data_type, n)
                            }
                            None => println!("  {:<16} {:?}", c.name, c.data_type),
                        }
                    }
                }
                continue;
            }
            "\\tpch" => {
                for q in TpchQuery::ALL {
                    println!("-- {q}\n{}\n", tpch::sql::text(q));
                }
                continue;
            }
            _ => {}
        }

        match Session::new(&mut engine, &catalog)
            .tenant("shell", 1.0)
            .sql(text)
        {
            Ok(rs) => {
                println!("{}", rs.columns.join(" | "));
                for row in &rs.rows {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("{}", cells.join(" | "));
                }
                println!(
                    "({} rows; modeled {:.3} ms, {} chunks, {} KiB admitted)",
                    rs.rows.len(),
                    rs.stats.total_ms(),
                    rs.stats.chunks_processed,
                    rs.footprint_bytes / 1024,
                );
            }
            Err(e) => println!("error: {e}"),
        }
    }
}
