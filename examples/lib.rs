//! Examples support library (intentionally empty).
