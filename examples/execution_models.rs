//! Execution-model comparison on one query (paper §IV / Fig. 11 in
//! miniature): chunked vs pipelined vs 4-phase on OpenCL- and CUDA-style
//! GPU drivers.
//!
//! Run: `cargo run --release -p adamant-examples --example execution_models`

use adamant::prelude::*;

fn main() {
    let catalog = TpchGenerator::new(0.02, 3).generate();
    println!(
        "TPC-H Q6 at SF 0.02 ({} lineitem rows), chunk = 16Ki rows\n",
        catalog.table("lineitem").unwrap().row_count()
    );
    println!("{:<20} {:>16} {:>16}", "model", "opencl (ms)", "cuda (ms)");
    let mut chunked_times = Vec::new();
    for model in [
        ExecutionModel::Chunked,
        ExecutionModel::Pipelined,
        ExecutionModel::FourPhaseChunked,
        ExecutionModel::FourPhasePipelined,
    ] {
        let mut row = format!("{:<20}", model.name());
        for profile in [
            DeviceProfile::opencl_rtx2080ti(),
            DeviceProfile::cuda_rtx2080ti(),
        ] {
            let mut engine = Adamant::builder()
                .chunk_rows(16 << 10)
                .device(profile)
                .build()
                .expect("engine");
            let dev = engine.device_ids()[0];
            let graph = TpchQuery::Q6.plan(dev, &catalog).expect("plan");
            let inputs = TpchQuery::Q6.bind(&catalog).expect("bind");
            let (_, stats) = engine.run(&graph, &inputs, model).expect("run");
            if model == ExecutionModel::Chunked {
                chunked_times.push(stats.total_ns);
            }
            row.push_str(&format!(" {:>16.3}", stats.total_ms()));
        }
        println!("{row}");
    }
    println!(
        "\n4-phase hides chunk transfers behind compute with dual pinned\n\
         staging buffers (paper Fig. 8); CUDA's faster bus and cheaper\n\
         launches keep it ahead of OpenCL throughout (paper Fig. 11)."
    );
}
